// Fixed-size worker pool with a shared task queue.
//
// Submit() enqueues fire-and-forget tasks; ParallelFor() fans a loop out over
// the workers and blocks until every iteration has run. ParallelFor called
// from inside a pool worker runs inline (no pool-in-pool deadlock), so nested
// parallel code degrades to serial instead of hanging. Destruction drains
// nothing: outstanding Submit() tasks are completed, then workers join.
//
// Shared() is the process-wide pool the parallel scan and bulk shredding use
// by default; it is lazily constructed (thread-safe) with one worker per
// hardware thread.
//
// Trace context propagates through the pool: Submit() captures the
// submitting thread's current span (common/trace.h) and installs it for the
// task's duration, so spans opened inside pool work — ParallelFor morsels
// included — nest under the span that dispatched them.

#ifndef XMLRDB_COMMON_THREAD_POOL_H_
#define XMLRDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xmlrdb {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = run everything inline).
  explicit ThreadPool(size_t num_threads);

  /// Completes all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Enqueues `fn` for asynchronous execution. With zero workers, runs
  /// inline. The submitter's trace context travels with the task.
  void Submit(std::function<void()> fn);

  /// Runs fn(0) ... fn(n-1) across the workers and blocks until all have
  /// finished. Iterations are handed out dynamically (morsel-style), so
  /// uneven iteration costs still balance. Runs inline when the pool is
  /// empty, n <= 1, or the caller is itself a pool worker.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// True when called from one of this process's pool worker threads.
  static bool OnWorkerThread();

  /// The process-wide pool (one worker per hardware thread, at least 2).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace xmlrdb

#endif  // XMLRDB_COMMON_THREAD_POOL_H_
