#include "common/resource_tracker.h"

namespace xmlrdb {

ResourceTracker& ResourceTracker::Global() {
  static ResourceTracker* tracker = new ResourceTracker();
  return *tracker;
}

ResourceGauge& ResourceTracker::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<ResourceGauge>())
             .first;
  }
  return *it->second;
}

int64_t ResourceTracker::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

std::map<std::string, int64_t> ResourceTracker::Snapshot() const {
  std::map<std::string, int64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

void ResourceTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
}

}  // namespace xmlrdb
