// Status and Result<T>: the error-handling backbone of xmlrdb.
//
// The library does not throw exceptions. Every fallible operation returns a
// Status (no payload) or a Result<T> (payload or error). The style follows
// arrow::Status / absl::StatusOr.

#ifndef XMLRDB_COMMON_STATUS_H_
#define XMLRDB_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace xmlrdb {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,       ///< malformed XML / DTD / SQL / XPath input
  kNotFound,         ///< missing table, column, index, document, ...
  kAlreadyExists,    ///< duplicate table/index/document name
  kOutOfRange,       ///< position past end, numeric overflow
  kTypeError,        ///< value used with an incompatible relational type
  kUnsupported,      ///< feature intentionally outside the implemented subset
  kConstraintError,  ///< schema constraint violated during DML
  kIoError,          ///< storage I/O failure (real or fault-injected)
  kTxnError,         ///< transaction/snapshot conflict (e.g. schema changed
                     ///< under an open read snapshot); retryable
  kInternal,         ///< invariant breakage inside the engine
};

/// Human-readable name for a StatusCode ("ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation with no payload.
///
/// Ok statuses are cheap (a null pointer); error statuses carry a code and a
/// message on the heap. Statuses are copyable and movable.
class Status {
 public:
  Status() = default;  // OK

  Status(StatusCode code, std::string message)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ConstraintError(std::string msg) {
    return Status(StatusCode::kConstraintError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status TxnError(std::string msg) {
    return Status(StatusCode::kTxnError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prepends context to an error message; no-op on OK statuses.
  Status WithContext(const std::string& context) const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<Rep> rep_;  // null <=> OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Payload-or-error. `ok()` implies the payload is present.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(state_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(state_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(state_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value if present, `fallback` otherwise.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> state_;
};

// Early-return helpers, arrow-style.
#define XMLRDB_CONCAT_IMPL(a, b) a##b
#define XMLRDB_CONCAT(a, b) XMLRDB_CONCAT_IMPL(a, b)

/// Evaluates `expr` (a Status); returns it from the enclosing function on error.
#define RETURN_IF_ERROR(expr)                        \
  do {                                               \
    ::xmlrdb::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates `expr` (a Result<T>); on error returns its status, otherwise
/// assigns the payload to `lhs` (which may include a declaration).
#define ASSIGN_OR_RETURN(lhs, expr) \
  ASSIGN_OR_RETURN_IMPL(XMLRDB_CONCAT(_res_, __LINE__), lhs, expr)

#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                          \
  if (!tmp.ok()) return tmp.status();         \
  lhs = std::move(tmp).value();

}  // namespace xmlrdb

#endif  // XMLRDB_COMMON_STATUS_H_
