// Hierarchical trace spans with explicit cross-thread context propagation.
//
// ScopedSpan opens a span on construction and records it into the global
// TraceCollector on destruction. Each thread keeps a span stack (the current
// span is the parent of any span opened next), and ThreadPool::Submit
// captures the submitting thread's current span so work executed on pool
// workers — parallel-scan morsels, bulk-shred documents — still nests under
// the statement span that spawned it.
//
// The collector is disabled by default; a ScopedSpan constructed while it is
// disabled costs one relaxed atomic load and records nothing. Finished spans
// are exported as Chrome trace-event JSON ("X" complete events with explicit
// span/parent ids in args), loadable in chrome://tracing or Perfetto.

#ifndef XMLRDB_COMMON_TRACE_H_
#define XMLRDB_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xmlrdb {

/// One finished span.
struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t id = 0;          ///< unique span id (> 0)
  uint64_t parent_id = 0;   ///< 0 = top-level span
  uint64_t request_id = 0;  ///< client-supplied wire request id (0 = none)
  int64_t tid = 0;          ///< stable small integer per thread
  int64_t start_us = 0;     ///< microseconds since process trace epoch
  int64_t dur_us = 0;
};

class TraceCollector {
 public:
  static TraceCollector& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Appends a finished span; silently drops once `capacity` events are
  /// buffered (dropped() reports how many).
  void Record(TraceEvent event);

  std::vector<TraceEvent> Snapshot() const;
  size_t size() const;
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Drops all buffered events and resets the dropped counter.
  void Clear();

  /// Bounded buffer size (default 128k events).
  void set_capacity(size_t capacity);

  /// Chrome trace-event JSON: {"traceEvents": [...]}. Every event carries
  /// args.span / args.parent so cross-thread nesting survives the export.
  std::string RenderChromeJson() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t capacity_ = 128 * 1024;
  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> dropped_{0};
};

namespace trace {

/// The calling thread's innermost open span id (0 if none).
uint64_t CurrentSpanId();

/// The wire request id attached to the calling thread (0 if none). Installed
/// by ScopedRequestId when the server dispatches a traced frame; every span
/// and statement-log entry produced inside the scope carries it, so a client
/// can match its own request id against server-side telemetry.
uint64_t CurrentRequestId();

/// Stable small integer identifying the calling thread in trace output.
int64_t CurrentThreadId();

/// Microseconds since the process trace epoch (first use).
int64_t NowMicros();

}  // namespace trace

/// RAII span: pushes itself as the thread's current span, records into the
/// global collector on destruction. Inactive (and nearly free) while the
/// collector is disabled at construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view category = "engine");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's id; 0 when the collector was disabled at construction.
  uint64_t id() const { return id_; }

 private:
  bool active_ = false;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  int64_t start_us_ = 0;
  std::string name_;
  std::string category_;
};

/// Installs `request_id` as the calling thread's current wire request id for
/// the scope. Unlike ScopedSpan this is always active — the request id must
/// reach the statement log even when tracing is off.
class ScopedRequestId {
 public:
  explicit ScopedRequestId(uint64_t request_id);
  ~ScopedRequestId();

  ScopedRequestId(const ScopedRequestId&) = delete;
  ScopedRequestId& operator=(const ScopedRequestId&) = delete;

 private:
  uint64_t saved_;
};

/// Installs `parent_span_id` as the calling thread's current span — and
/// `request_id` as its current request id — for the scope: the cross-thread
/// handoff used by ThreadPool workers.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(uint64_t parent_span_id, uint64_t request_id = 0);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  uint64_t saved_;
  uint64_t saved_request_;
};

}  // namespace xmlrdb

#endif  // XMLRDB_COMMON_TRACE_H_
