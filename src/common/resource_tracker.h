// Engine-wide resource accounting: named byte/occupancy gauges behind one
// process-global tracker.
//
// Unlike MetricsRegistry counters (off by default, enabled per capture so
// instrumented hot paths cost nothing), resource gauges are ALWAYS on: the
// question "how much memory is the plan cache / WAL / table heap using right
// now" must be answerable from a cold /metrics scrape without anyone having
// turned anything on first. A gauge update is one relaxed atomic add, cheap
// enough for every insert/delete/append in the engine.
//
// Gauges are registered by name on first use and live for the process
// lifetime, so subsystems cache the returned reference and Add() lock-free.
// Owners that die (a dropped Table, an evicted plan-cache entry, a closed
// connection) subtract what they added, so a gauge is the live total across
// every instance in the process — the same process-global scope the metrics
// registry uses.
//
// Exposed through RenderPrometheus() (as `# TYPE ... gauge`), the
// xmlrdb_resources virtual table, and the admin plane's /resources endpoint.

#ifndef XMLRDB_COMMON_RESOURCE_TRACKER_H_
#define XMLRDB_COMMON_RESOURCE_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace xmlrdb {

/// One live total (bytes, entries, ...). Writers Add() deltas; a reading
/// scrape sees the instantaneous sum.
class ResourceGauge {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class ResourceTracker {
 public:
  /// The process-wide tracker every subsystem reports into.
  static ResourceTracker& Global();

  /// The gauge registered under `name`, created on first use. The returned
  /// reference stays valid for the process lifetime, so callers cache it and
  /// update lock-free.
  ResourceGauge& GetGauge(std::string_view name);

  /// Current value of `name` (0 if never written).
  int64_t Get(const std::string& name) const;

  /// Copy of every gauge, by name.
  std::map<std::string, int64_t> Snapshot() const;

  /// Zeroes every gauge (tests only — live owners keep their references and
  /// their deltas would skew a zeroed gauge).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ResourceGauge>, std::less<>> gauges_;
};

}  // namespace xmlrdb

#endif  // XMLRDB_COMMON_RESOURCE_TRACKER_H_
