// Deterministic PRNG used by workload generators and property tests.
//
// A thin xorshift128+ wrapper: deterministic across platforms (unlike
// std::default_random_engine) so generated workloads are reproducible.

#ifndef XMLRDB_COMMON_RNG_H_
#define XMLRDB_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xmlrdb {

class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 is uniform).
  /// Uses the standard inverse-CDF-over-precomputed-harmonics approach for
  /// small n, falling back to rejection sampling for large n.
  size_t Zipf(size_t n, double s);

  /// Random lowercase ASCII word of length in [min_len, max_len].
  std::string Word(int min_len, int max_len);

  /// Picks a uniformly random element; requires non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(Uniform(0, static_cast<int64_t>(v.size()) - 1))];
  }

 private:
  uint64_t s_[2];
};

}  // namespace xmlrdb

#endif  // XMLRDB_COMMON_RNG_H_
