// Fixed log-bucketed latency histograms with lock-free recording.
//
// A Histogram has 64 power-of-two buckets: bucket 0 holds the value 0 and
// bucket i (i >= 1) holds values in [2^(i-1), 2^i). Record() is three relaxed
// atomic adds plus a CAS loop for the exact maximum, so concurrent writers
// never serialize. Percentile() walks the bucket array and interpolates
// linearly inside the winning bucket; the reported value never exceeds the
// exact recorded maximum.
//
// Histograms are registered by name in MetricsRegistry (see metrics.h) and
// surface through the xmlrdb_metrics virtual table, RenderPrometheus(), and
// the benchmark JSON percentiles.

#ifndef XMLRDB_COMMON_HISTOGRAM_H_
#define XMLRDB_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace xmlrdb {

/// Point-in-time copy of a histogram's state; cheap to pass around and safe
/// to aggregate offline.
struct HistogramSnapshot {
  static constexpr int kNumBuckets = 64;

  std::array<int64_t, kNumBuckets> buckets{};
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;

  /// Value at percentile `p` in [0, 100]; 0 for an empty histogram.
  double Percentile(double p) const;
  double p50() const { return Percentile(50.0); }
  double p95() const { return Percentile(95.0); }
  double p99() const { return Percentile(99.0); }
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

class Histogram {
 public:
  static constexpr int kNumBuckets = HistogramSnapshot::kNumBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample. Negative values clamp to 0. Lock-free.
  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Consistent-enough copy for reporting (individual loads are relaxed; the
  /// snapshot may tear against concurrent writers by at most a few samples).
  HistogramSnapshot Snapshot() const;

  double Percentile(double p) const { return Snapshot().Percentile(p); }

  /// Zeroes every bucket and the count/sum/max. Not atomic with respect to
  /// concurrent Record() calls; callers quiesce or accept the skew.
  void Clear();

  /// Bucket index for a value: 0 for 0, else bit_width(value).
  static int BucketIndex(int64_t value);
  /// Smallest value a bucket holds (0, 1, 2, 4, 8, ...).
  static int64_t BucketLowerBound(int bucket);
  /// Exclusive upper bound of a bucket (1, 2, 4, 8, ...).
  static int64_t BucketUpperBound(int bucket);

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

}  // namespace xmlrdb

#endif  // XMLRDB_COMMON_HISTOGRAM_H_
