#include "rdb/env.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace xmlrdb::rdb {

namespace {

namespace fs = std::filesystem;

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}

  ~PosixWritableFile() override { Close(); }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) return Status::IoError(path_ + ": file closed");
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IoError("short write to " + path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (file_ == nullptr) return Status::IoError(path_ + ": file closed");
    if (std::fflush(file_) != 0) {
      return Status::IoError("fflush failed for " + path_);
    }
#ifndef _WIN32
    if (::fsync(::fileno(file_)) != 0) {
      return Status::IoError("fsync failed for " + path_);
    }
#endif
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) {
      return Status::IoError("close failed for " + path_);
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (f == nullptr) {
      return Status::IoError("cannot open " + path + " for writing");
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(f, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::NotFound("cannot open " + path);
    std::string out;
    char buf[1 << 16];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed) return Status::IoError("read failed for " + path);
    return out;
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IoError("mkdir " + path + ": " + ec.message());
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    std::vector<std::string> out;
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      out.push_back(entry.path().filename().string());
    }
    if (ec) return Status::IoError("list " + path + ": " + ec.message());
    return out;
  }

  Status RemoveFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::IoError("remove " + path +
                             (ec ? ": " + ec.message() : ": no such file"));
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      return Status::IoError("rename " + from + " -> " + to + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  Status RemoveDirRecursive(const std::string& path) override {
    std::error_code ec;
    fs::remove_all(path, ec);
    if (ec) return Status::IoError("rm -r " + path + ": " + ec.message());
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace xmlrdb::rdb
