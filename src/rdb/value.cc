#include "rdb/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "common/str_util.h"

namespace xmlrdb::rdb {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull: return "NULL";
    case DataType::kInt: return "INTEGER";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "VARCHAR";
    case DataType::kBool: return "BOOLEAN";
  }
  return "UNKNOWN";
}

Result<DataType> ParseDataType(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "integer" || n == "int" || n == "bigint") return DataType::kInt;
  if (n == "double" || n == "float" || n == "real") return DataType::kDouble;
  if (n == "varchar" || n == "text" || n == "string" || n == "char") {
    return DataType::kString;
  }
  if (n == "boolean" || n == "bool") return DataType::kBool;
  return Status::ParseError("unknown type name '" + name + "'");
}

DataType Value::type() const {
  switch (rep_.index()) {
    case 0: return DataType::kNull;
    case 1: return DataType::kInt;
    case 2: return DataType::kDouble;
    case 3: return DataType::kString;
    case 4: return DataType::kBool;
  }
  return DataType::kNull;
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(rep_)) {
    return static_cast<double>(std::get<int64_t>(rep_));
  }
  return std::get<double>(rep_);
}

namespace {

// 2^63 as a double; exactly representable. Doubles at or above it (resp.
// below -2^63) are outside int64 range.
constexpr double kInt64Bound = 9223372036854775808.0;

/// Total order on doubles: -inf < ... < +inf < NaN. Ordering NaN after every
/// other double (instead of "equal to everything") keeps Compare a strict
/// weak ordering, which std::sort and the b-tree comparator require.
int CompareDoubles(double a, double b) {
  bool an = std::isnan(a), bn = std::isnan(b);
  if (an || bn) {
    if (an && bn) return 0;
    return an ? 1 : -1;
  }
  return a < b ? -1 : (a > b ? 1 : 0);
}

/// Exact int64-vs-double comparison. Widening the int via AsDouble() loses
/// precision above 2^53 (e.g. 2^63-1 == 2^63.0 under the lossy scheme);
/// instead compare against the double's integer part and fraction.
int CompareIntWithDouble(int64_t i, double d) {
  if (std::isnan(d)) return -1;  // numbers order before NaN
  if (d >= kInt64Bound) return -1;
  if (d < -kInt64Bound) return 1;
  int64_t t = static_cast<int64_t>(d);  // trunc toward zero; in range
  if (i != t) return i < t ? -1 : 1;
  // Equal integer parts: the fraction decides. Above 2^53 doubles are
  // integral, so both terms below are exact in every regime.
  double frac = d - static_cast<double>(t);
  if (frac > 0) return -1;
  if (frac < 0) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  bool an = is_null(), bn = other.is_null();
  if (an || bn) {
    if (an && bn) return 0;
    return an ? -1 : 1;
  }
  DataType ta = type(), tb = other.type();
  bool a_num = ta == DataType::kInt || ta == DataType::kDouble;
  bool b_num = tb == DataType::kInt || tb == DataType::kDouble;
  if (a_num && b_num) {
    if (ta == DataType::kInt && tb == DataType::kInt) {
      int64_t x = AsInt(), y = other.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    if (ta == DataType::kInt) return CompareIntWithDouble(AsInt(), other.AsDouble());
    if (tb == DataType::kInt) return -CompareIntWithDouble(other.AsInt(), AsDouble());
    return CompareDoubles(AsDouble(), other.AsDouble());
  }
  if (ta != tb) return static_cast<int>(ta) < static_cast<int>(tb) ? -1 : 1;
  switch (ta) {
    case DataType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kBool:
      return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull: return 0x9e3779b9;
    case DataType::kInt: return std::hash<int64_t>{}(AsInt());
    case DataType::kDouble: {
      // Hash ints and int-valued doubles identically so mixed-type equi-joins
      // work through the hash join. The range guard must come first: casting
      // an out-of-int64-range (or NaN) double is undefined behavior.
      double d = AsDouble();
      if (std::isnan(d)) return 0x7ff8dead;  // all NaNs compare equal
      if (std::abs(d) < 9.2e18 &&
          d == static_cast<double>(static_cast<int64_t>(d))) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case DataType::kString: return std::hash<std::string>{}(AsString());
    case DataType::kBool: return std::hash<bool>{}(AsBool());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull: return "NULL";
    case DataType::kInt: return std::to_string(AsInt());
    case DataType::kDouble: {
      // Shortest round-trip formatting: try increasing precision until the
      // printed form parses back to the same double, so 0.1 prints as "0.1"
      // but no value silently loses precision the way %g (6 digits) did.
      double d = AsDouble();
      char buf[40];
      for (int prec : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
        if (std::strtod(buf, nullptr) == d) break;  // NaN falls through
      }
      return buf;
    }
    case DataType::kString: return AsString();
    case DataType::kBool: return AsBool() ? "true" : "false";
  }
  return "?";
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Value::Null();
  if (type() == target) return *this;
  switch (target) {
    case DataType::kInt:
      switch (type()) {
        case DataType::kDouble: {
          // Truncating casts of NaN or out-of-range doubles are undefined
          // behavior; reject them instead.
          double d = AsDouble();
          if (std::isnan(d) || d >= kInt64Bound || d < -kInt64Bound) {
            return Status::TypeError("DOUBLE value " + ToString() +
                                     " out of INTEGER range");
          }
          return Value(static_cast<int64_t>(d));
        }
        case DataType::kString: {
          ASSIGN_OR_RETURN(int64_t v, ParseInt64(AsString()));
          return Value(v);
        }
        case DataType::kBool: return Value(static_cast<int64_t>(AsBool()));
        default: break;
      }
      break;
    case DataType::kDouble:
      switch (type()) {
        case DataType::kInt: return Value(static_cast<double>(AsInt()));
        case DataType::kString: {
          ASSIGN_OR_RETURN(double v, ParseDouble(AsString()));
          return Value(v);
        }
        default: break;
      }
      break;
    case DataType::kString:
      return Value(ToString());
    case DataType::kBool:
      if (type() == DataType::kInt) return Value(AsInt() != 0);
      break;
    default:
      break;
  }
  return Status::TypeError(std::string("cannot cast ") + DataTypeName(type()) +
                           " to " + DataTypeName(target));
}

size_t Value::FootprintBytes() const {
  size_t base = sizeof(Value);
  if (type() == DataType::kString) base += AsString().capacity();
  return base;
}

size_t HashRow(const Row& row) {
  // Position-mixing combiner (boost::hash_combine style): the running hash
  // is sheared into the incoming value, so permuted rows — and rows that
  // differ only by shifting a value across columns — hash differently.
  size_t h = row.size();
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace xmlrdb::rdb
