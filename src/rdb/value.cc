#include "rdb/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/str_util.h"

namespace xmlrdb::rdb {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull: return "NULL";
    case DataType::kInt: return "INTEGER";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "VARCHAR";
    case DataType::kBool: return "BOOLEAN";
  }
  return "UNKNOWN";
}

Result<DataType> ParseDataType(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "integer" || n == "int" || n == "bigint") return DataType::kInt;
  if (n == "double" || n == "float" || n == "real") return DataType::kDouble;
  if (n == "varchar" || n == "text" || n == "string" || n == "char") {
    return DataType::kString;
  }
  if (n == "boolean" || n == "bool") return DataType::kBool;
  return Status::ParseError("unknown type name '" + name + "'");
}

DataType Value::type() const {
  switch (rep_.index()) {
    case 0: return DataType::kNull;
    case 1: return DataType::kInt;
    case 2: return DataType::kDouble;
    case 3: return DataType::kString;
    case 4: return DataType::kBool;
  }
  return DataType::kNull;
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(rep_)) {
    return static_cast<double>(std::get<int64_t>(rep_));
  }
  return std::get<double>(rep_);
}

int Value::Compare(const Value& other) const {
  bool an = is_null(), bn = other.is_null();
  if (an || bn) {
    if (an && bn) return 0;
    return an ? -1 : 1;
  }
  DataType ta = type(), tb = other.type();
  bool a_num = ta == DataType::kInt || ta == DataType::kDouble;
  bool b_num = tb == DataType::kInt || tb == DataType::kDouble;
  if (a_num && b_num) {
    if (ta == DataType::kInt && tb == DataType::kInt) {
      int64_t x = AsInt(), y = other.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = AsDouble(), y = other.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (ta != tb) return static_cast<int>(ta) < static_cast<int>(tb) ? -1 : 1;
  switch (ta) {
    case DataType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kBool:
      return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull: return 0x9e3779b9;
    case DataType::kInt: return std::hash<int64_t>{}(AsInt());
    case DataType::kDouble: {
      // Hash ints and int-valued doubles identically so mixed-type equi-joins
      // work through the hash join.
      double d = AsDouble();
      if (d == static_cast<double>(static_cast<int64_t>(d)) &&
          std::abs(d) < 9.2e18) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case DataType::kString: return std::hash<std::string>{}(AsString());
    case DataType::kBool: return std::hash<bool>{}(AsBool());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull: return "NULL";
    case DataType::kInt: return std::to_string(AsInt());
    case DataType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case DataType::kString: return AsString();
    case DataType::kBool: return AsBool() ? "true" : "false";
  }
  return "?";
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Value::Null();
  if (type() == target) return *this;
  switch (target) {
    case DataType::kInt:
      switch (type()) {
        case DataType::kDouble: return Value(static_cast<int64_t>(AsDouble()));
        case DataType::kString: {
          ASSIGN_OR_RETURN(int64_t v, ParseInt64(AsString()));
          return Value(v);
        }
        case DataType::kBool: return Value(static_cast<int64_t>(AsBool()));
        default: break;
      }
      break;
    case DataType::kDouble:
      switch (type()) {
        case DataType::kInt: return Value(static_cast<double>(AsInt()));
        case DataType::kString: {
          ASSIGN_OR_RETURN(double v, ParseDouble(AsString()));
          return Value(v);
        }
        default: break;
      }
      break;
    case DataType::kString:
      return Value(ToString());
    case DataType::kBool:
      if (type() == DataType::kInt) return Value(AsInt() != 0);
      break;
    default:
      break;
  }
  return Status::TypeError(std::string("cannot cast ") + DataTypeName(type()) +
                           " to " + DataTypeName(target));
}

size_t Value::FootprintBytes() const {
  size_t base = sizeof(Value);
  if (type() == DataType::kString) base += AsString().capacity();
  return base;
}

size_t HashRow(const Row& row) {
  // Position-mixing combiner (boost::hash_combine style): the running hash
  // is sheared into the incoming value, so permuted rows — and rows that
  // differ only by shifting a value across columns — hash differently.
  size_t h = row.size();
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace xmlrdb::rdb
