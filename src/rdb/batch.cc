#include "rdb/batch.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

namespace xmlrdb::rdb {

void Batch::Reset(size_t num_columns) {
  if (cols_.size() != num_columns) {
    cols_.resize(num_columns);
  }
  for (auto& col : cols_) col.clear();
  num_rows_ = 0;
  has_sel_ = false;
  sel_.clear();
  identity_.clear();
}

void Batch::AppendRow(const Row& row) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].push_back(c < row.size() ? row[c] : Value::Null());
  }
  ++num_rows_;
}

void Batch::AppendRowMove(Row&& row) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].push_back(c < row.size() ? std::move(row[c]) : Value::Null());
  }
  ++num_rows_;
}

void Batch::SetSelection(std::vector<uint32_t> sel) {
  sel_ = std::move(sel);
  has_sel_ = true;
}

void Batch::ClearSelection() {
  has_sel_ = false;
  sel_.clear();
}

const std::vector<uint32_t>& Batch::ActiveRids() const {
  if (has_sel_) return sel_;
  if (identity_.size() != num_rows_) {
    identity_.resize(num_rows_);
    for (size_t i = 0; i < num_rows_; ++i) {
      identity_[i] = static_cast<uint32_t>(i);
    }
  }
  return identity_;
}

Row Batch::MaterializeRow(size_t physical_rid) const {
  Row out;
  out.reserve(cols_.size());
  for (const auto& col : cols_) out.push_back(col[physical_rid]);
  return out;
}

void Batch::AppendTo(std::vector<Row>* out) const {
  for (uint32_t rid : ActiveRids()) out->push_back(MaterializeRow(rid));
}

namespace {

constexpr int kMinBatchSize = 1;
constexpr int kMaxBatchSize = 65536;

int InitialBatchSize() {
  if (const char* env = std::getenv("XMLRDB_BATCH_SIZE")) {
    int v = std::atoi(env);
    if (v > 0) return std::clamp(v, kMinBatchSize, kMaxBatchSize);
  }
  return 1024;
}

std::atomic<int>& BatchSizeVar() {
  static std::atomic<int> size{InitialBatchSize()};
  return size;
}

ExecMode InitialExecMode() {
  if (const char* env = std::getenv("XMLRDB_EXEC_MODE")) {
    std::string v = env;
    if (v == "row") return ExecMode::kRow;
  }
  return ExecMode::kBatch;
}

std::atomic<ExecMode>& ExecModeVar() {
  static std::atomic<ExecMode> mode{InitialExecMode()};
  return mode;
}

}  // namespace

int DefaultBatchSize() {
  return BatchSizeVar().load(std::memory_order_relaxed);
}

void SetDefaultBatchSize(int n) {
  BatchSizeVar().store(std::clamp(n, kMinBatchSize, kMaxBatchSize),
                       std::memory_order_relaxed);
}

ExecMode DefaultExecMode() {
  return ExecModeVar().load(std::memory_order_relaxed);
}

void SetDefaultExecMode(ExecMode mode) {
  ExecModeVar().store(mode, std::memory_order_relaxed);
}

}  // namespace xmlrdb::rdb
