// Crash-safe database opening: checkpoint snapshot + WAL replay.
//
// On-disk layout of a durable database directory:
//   CURRENT          which (snapshot, log) pair is live — the only file ever
//                    read to decide what the database *is*. Updated by
//                    writing CURRENT.tmp and atomically renaming over it.
//   snap_<seq>/      a SaveDatabase snapshot (absent before the first
//                    checkpoint; CURRENT then records "-")
//   wal_<seq>.log    the write-ahead log of everything since that snapshot
// Anything not named by CURRENT is garbage from a superseded checkpoint or a
// checkpoint that crashed halfway — opening ignores it, the next successful
// checkpoint deletes it.
//
// OpenDurableDatabase:
//   1. No CURRENT: cold start. Create an empty log, write CURRENT, serve.
//   2. Load the snapshot CURRENT names (or start empty).
//   3. Read the log. A torn tail (partial last record) is expected after a
//      crash: the file is rewritten to its intact prefix. Corruption
//      anywhere else fails the open.
//   4. Replay: records of transaction 0 apply at their log position;
//      records of a transaction whose kCommit record exists apply at the
//      commit's position; records of uncommitted transactions are dropped.
//      Replay happens before the WAL is attached, so it is never re-logged.
//   5. Reopen the log for appending and attach it to the database.
// Opening an already-consistent directory replays the same prefix to the
// same state (replay is deterministic and the log is append-only), so a
// crash during or immediately after recovery is harmless — recovery never
// writes to the log.
//
// Database::Checkpoint (defined here, declared in database.h) bounds replay
// work: quiesce writers, snapshot all durable tables to snap_<seq>/, start
// wal_<seq>.log at the current LSN, flip CURRENT, delete the old pair.

#ifndef XMLRDB_RDB_DURABILITY_H_
#define XMLRDB_RDB_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "rdb/database.h"
#include "rdb/env.h"
#include "rdb/wal.h"

namespace xmlrdb::rdb {

struct DurableOptions {
  WalOptions wal;
};

/// What recovery found and did; also mirrored into engine metrics
/// (recovery.records_replayed, recovery.records_discarded, ...).
struct RecoveryStats {
  bool cold_start = false;           ///< no CURRENT file existed
  bool torn_tail_truncated = false;  ///< log ended mid-record; prefix kept
  int64_t records_scanned = 0;       ///< intact records found in the log
  int64_t records_replayed = 0;      ///< applied (committed or autocommit)
  int64_t records_discarded = 0;     ///< dropped (uncommitted transactions)
  int64_t txns_committed = 0;        ///< distinct committed transactions
  std::string snapshot_dir;          ///< snapshot loaded ("" = none)
};

/// Opens (recovering if needed) the durable database living under `dir`,
/// creating it on first use. The returned database logs every further
/// mutation to the WAL named by CURRENT. `stats`, when non-null, receives
/// what recovery did.
Result<std::unique_ptr<Database>> OpenDurableDatabase(
    Env* env, const std::string& dir, const DurableOptions& options = {},
    RecoveryStats* stats = nullptr);

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_DURABILITY_H_
