#include "rdb/sql_lexer.h"

#include <cctype>

namespace xmlrdb::rdb {

namespace {
std::string Upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}
}  // namespace

Result<std::vector<Token>> LexSql(std::string_view sql) {
  std::vector<Token> out;
  size_t i = 0;
  auto push = [&](TokKind kind, std::string text, size_t offset) {
    Token t;
    t.kind = kind;
    t.upper = Upper(text);
    t.text = std::move(text);
    t.offset = offset;
    out.push_back(std::move(t));
  };
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) || sql[i] == '_')) {
        ++i;
      }
      push(TokKind::kIdent, std::string(sql.substr(start, i - start)), start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_double = false;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) || sql[i] == '.' ||
              sql[i] == 'e' || sql[i] == 'E' ||
              ((sql[i] == '+' || sql[i] == '-') && i > start &&
               (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        if (sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E') is_double = true;
        ++i;
      }
      push(is_double ? TokKind::kDouble : TokKind::kInt,
           std::string(sql.substr(start, i - start)), start);
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string body;
      while (true) {
        if (i >= sql.size()) {
          return Status::ParseError("unterminated string literal at offset " +
                                    std::to_string(start));
        }
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            body += '\'';
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        body += sql[i++];
      }
      push(TokKind::kString, std::move(body), start);
      continue;
    }
    if (c == '"') {
      // Double-quoted identifier.
      ++i;
      std::string body;
      while (i < sql.size() && sql[i] != '"') body += sql[i++];
      if (i >= sql.size()) {
        return Status::ParseError("unterminated quoted identifier at offset " +
                                  std::to_string(start));
      }
      ++i;
      push(TokKind::kIdent, std::move(body), start);
      continue;
    }
    // Multi-char symbols first.
    static const char* kTwoChar[] = {"<>", "!=", "<=", ">="};
    bool matched = false;
    for (const char* sym : kTwoChar) {
      if (sql.substr(i, 2) == sym) {
        push(TokKind::kSymbol, sym, start);
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kOneChar = "=<>+-*/%(),.;?";
    if (kOneChar.find(c) != std::string::npos) {
      push(TokKind::kSymbol, std::string(1, c), start);
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  push(TokKind::kEnd, "", sql.size());
  return out;
}

}  // namespace xmlrdb::rdb
