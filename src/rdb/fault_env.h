// FaultInjectionEnv: an in-memory filesystem that models durability the way
// a crash-consistency test needs it modelled.
//
// Every file keeps two lengths: its current contents and the prefix that has
// been fsynced. A simulated crash (SimulateCrash or a tripped crash point)
// discards everything past the synced prefix — optionally keeping a
// configurable number of bytes of the unsynced tail to simulate a torn
// write — and makes all further I/O fail like a dead process. Metadata
// operations (create, rename, remove) are modelled as immediately durable;
// only file *data* is volatile, which is the distinction the WAL and the
// checkpoint protocol actually depend on.
//
// Fault knobs:
//   * set_fail_after_data_writes(n): the (n+1)th Append from now on fails
//     with kIoError (and every one after it, until the knob is cleared with
//     -1). An optional short-write size persists a prefix of the failing
//     append, simulating a torn in-place write.
//   * ArmCrashPoint(name, hit): the hit-th time engine code reaches
//     CrashPoint(name), the env crashes as described above.
//   * set_torn_tail_bytes(k): on crash, keep up to k bytes of each file's
//     unsynced tail instead of dropping it entirely.
//
// Every CrashPoint(name) call is recorded (name -> hit count) whether or not
// a crash is armed, so a torture test can first run a workload cleanly to
// enumerate the crash surface and then iterate over it.
//
// Thread-safe; all state is guarded by one mutex (I/O here is cheap).

#ifndef XMLRDB_RDB_FAULT_ENV_H_
#define XMLRDB_RDB_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "rdb/env.h"

namespace xmlrdb::rdb {

class FaultInjectionEnv : public Env {
 public:
  FaultInjectionEnv() = default;

  // -- Env --
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveDirRecursive(const std::string& path) override;
  Status CrashPoint(const std::string& name) override;

  // -- fault knobs --
  /// Fails every data write after the next `n` successful ones; -1 disables.
  void set_fail_after_data_writes(int64_t n);
  /// When a write fails via the knob above, persist its first `bytes` bytes
  /// (a torn in-place write). Default 0 = nothing of the failed write lands.
  void set_short_write_bytes(size_t bytes);
  /// On crash, keep up to `bytes` of each file's unsynced tail (torn tail).
  void set_torn_tail_bytes(size_t bytes);

  /// Arms a crash at the `hit`-th (1-based) future call of CrashPoint(name).
  void ArmCrashPoint(const std::string& name, int64_t hit = 1);
  /// Drops unsynced data and fails all subsequent I/O, as if the process
  /// died here.
  void SimulateCrash();
  /// Clears the crashed state (durable contents stay), so a test can
  /// "restart the process" and recover from what survived.
  void ResetCrash();
  bool crashed() const;

  // -- introspection --
  /// Every crash-point name seen so far, with hit counts.
  std::map<std::string, int64_t> CrashPointHits() const;
  void ClearCrashPointHits();
  int64_t data_writes() const;
  int64_t syncs() const;

 private:
  friend class FaultInjectionFile;

  struct FileRep {
    std::string data;
    size_t synced_len = 0;
  };

  /// Crash with `mu_` held.
  void CrashLocked();
  Status WriteLocked(const std::string& path, std::string_view data);
  Status SyncLocked(const std::string& path);

  mutable std::mutex mu_;
  std::map<std::string, FileRep> files_;
  std::map<std::string, int64_t> crash_point_hits_;
  std::string armed_point_;
  int64_t armed_hit_ = 0;
  bool crashed_ = false;
  int64_t fail_after_writes_ = -1;
  size_t short_write_bytes_ = 0;
  size_t torn_tail_bytes_ = 0;
  int64_t data_writes_ = 0;
  int64_t syncs_ = 0;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_FAULT_ENV_H_
