#include "rdb/table.h"

#include <algorithm>
#include <mutex>

#include "common/resource_tracker.h"

namespace xmlrdb::rdb {

namespace {

ResourceGauge& RowBytesGauge() {
  static ResourceGauge& g =
      ResourceTracker::Global().GetGauge("tables.row_bytes");
  return g;
}

ResourceGauge& IndexBytesGauge() {
  static ResourceGauge& g =
      ResourceTracker::Global().GetGauge("tables.index_bytes");
  return g;
}

/// Bytes held by superseded/deleted versions still reachable by snapshots.
ResourceGauge& VersionBytesGauge() {
  static ResourceGauge& g =
      ResourceTracker::Global().GetGauge("mvcc.version_bytes");
  return g;
}

/// Cumulative bytes handed back by version GC (monotonic).
ResourceGauge& ReclaimedBytesGauge() {
  static ResourceGauge& g =
      ResourceTracker::Global().GetGauge("mvcc.reclaimed_bytes");
  return g;
}

int64_t RowFootprint(const Row& row) {
  int64_t bytes = 0;
  for (const Value& v : row) bytes += static_cast<int64_t>(v.FootprintBytes());
  return bytes;
}

// Matches the per-entry cost FootprintBytesUnlocked charges: key columns + rid.
int64_t IndexEntryBytes(const Index& idx) {
  return static_cast<int64_t>((idx.key_columns().size() + 1) * sizeof(Value));
}

}  // namespace

Index::Index(std::string name, const Table* table, std::vector<size_t> key_columns)
    : name_(std::move(name)), table_(table), key_columns_(std::move(key_columns)) {}

Row Index::MakeKey(const Row& row, RowId rid) const {
  Row key;
  key.reserve(key_columns_.size() + 1);
  for (size_t c : key_columns_) key.push_back(row[c]);
  key.push_back(Value(static_cast<int64_t>(rid)));
  return key;
}

bool Index::Add(const Row& row, RowId rid) {
  return tree_.Insert(MakeKey(row, rid));
}

bool Index::Remove(const Row& row, RowId rid) {
  return tree_.Erase(MakeKey(row, rid));
}

std::vector<RowId> Index::LookupEqual(const Row& key) const {
  return LookupRange(key, true, key, true);
}

// Stale entries are expected under lazy MVCC maintenance (Delete keeps
// entries, Update leaves the old key's). An entry is *current* iff its row
// is live and its key columns still equal the newest row's — exactly the
// rows an eager index would hold, so the legacy lookups filter to that.
bool Index::EntryIsCurrent(const Row& entry_key) const {
  const RowId rid = static_cast<RowId>(entry_key.back().AsInt());
  if (!table_->IsLive(rid)) return false;
  const Row& row = table_->row(rid);
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    if (row[key_columns_[i]].Compare(entry_key[i]) != 0) return false;
  }
  return true;
}

std::vector<RowId> Index::LookupRange(const Row& lower, bool lower_inclusive,
                                      const Row& upper,
                                      bool upper_inclusive) const {
  std::vector<RowId> out;
  BTree::Iterator it =
      lower.empty() ? tree_.Begin() : tree_.SeekAtLeast(lower, lower_inclusive);
  while (it.Valid()) {
    const Row& k = it.key();
    if (!upper.empty()) {
      int c = PrefixCompareRows(k, upper);
      if (c > 0 || (!upper_inclusive && c == 0)) break;
    }
    if (EntryIsCurrent(k)) out.push_back(static_cast<RowId>(k.back().AsInt()));
    it.Next();
  }
  return out;
}

std::vector<Row> Index::EntriesInRange(const Row& lower, bool lower_inclusive,
                                       const Row& upper,
                                       bool upper_inclusive) const {
  std::vector<Row> out;
  BTree::Iterator it =
      lower.empty() ? tree_.Begin() : tree_.SeekAtLeast(lower, lower_inclusive);
  while (it.Valid()) {
    const Row& k = it.key();
    if (!upper.empty()) {
      int c = PrefixCompareRows(k, upper);
      if (c > 0 || (!upper_inclusive && c == 0)) break;
    }
    out.push_back(k);
    it.Next();
  }
  return out;
}

bool Index::MatchesPrefix(const std::vector<size_t>& cols) const {
  if (cols.size() > key_columns_.size()) return false;
  return std::equal(cols.begin(), cols.end(), key_columns_.begin());
}

Table::~Table() {
  FreeAllVersions();
  RowBytesGauge().Add(-tracked_row_bytes_);
  IndexBytesGauge().Add(-tracked_index_bytes_);
  VersionBytesGauge().Add(-tracked_version_bytes_);
}

RowId Table::AppendSlot(RowVersion* v) {
  size_t s = num_slots_.load(std::memory_order_relaxed);
  auto [c, off] = SlotPos(s);
  Chunk* ch = chunks_[c].load(std::memory_order_relaxed);
  if (ch == nullptr) {
    ch = new Chunk(1ull << (kFirstChunkBits + c));
    chunks_[c].store(ch, std::memory_order_release);
  }
  ch->slots[off].store(v, std::memory_order_release);
  num_slots_.store(s + 1, std::memory_order_release);
  return s;
}

void Table::StampCreate(RowVersion* v,
                        std::vector<std::atomic<uint64_t>*>* own) {
  Lsn apply = ScopedApplyLsn::Current();
  if (apply != 0) {
    v->created.store(apply, std::memory_order_release);
  } else if (uint64_t txn = MvccTransaction::CurrentTxnId(); txn != 0) {
    v->created.store(kUncommittedStampBit | txn, std::memory_order_release);
    MvccTransaction::RecordStamp(&v->created);
    MvccTransaction::Pin(self_.lock());
  } else {
    // Stamp txn 0 is visible to nobody; the caller self-commits via `own`
    // after the version (and its index entries) are fully published.
    v->created.store(kUncommittedStampBit, std::memory_order_release);
    own->push_back(&v->created);
  }
}

void Table::StampDelete(RowVersion* v,
                        std::vector<std::atomic<uint64_t>*>* own) {
  Lsn apply = ScopedApplyLsn::Current();
  if (apply != 0) {
    v->deleted.store(apply, std::memory_order_release);
  } else if (uint64_t txn = MvccTransaction::CurrentTxnId(); txn != 0) {
    v->deleted.store(kUncommittedStampBit | txn, std::memory_order_release);
    MvccTransaction::RecordStamp(&v->deleted);
    MvccTransaction::Pin(self_.lock());
  } else {
    v->deleted.store(kUncommittedStampBit, std::memory_order_release);
    own->push_back(&v->deleted);
  }
}

Result<RowId> Table::Insert(Row row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return InsertUnlocked(std::move(row));
}

Result<RowId> Table::InsertUnlocked(Row row) {
  RETURN_IF_ERROR(schema_.ValidateRow(row));
  if (sink_ != nullptr) RETURN_IF_ERROR(sink_->OnInsert(*this, row));
  auto* v = new RowVersion(std::move(row));
  std::vector<std::atomic<uint64_t>*> own;
  if (mvcc_) StampCreate(v, &own);
  RowId rid = AppendSlot(v);
  int64_t delta = RowFootprint(v->row);
  tracked_row_bytes_ += delta;
  RowBytesGauge().Add(delta);
  {
    std::unique_lock<std::shared_mutex> il(index_mu_);
    for (auto& idx : indexes_) {
      if (idx->Add(v->row, rid)) {
        tracked_index_bytes_ += IndexEntryBytes(*idx);
        IndexBytesGauge().Add(IndexEntryBytes(*idx));
      }
    }
  }
  live_rows_.fetch_add(1, std::memory_order_release);
  if (!own.empty()) MvccEngine::Global().CommitStamps(own);
  return rid;
}

Status Table::InsertMany(std::vector<Row> rows) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // One visibility unit: snapshot readers see the whole batch or nothing.
  MvccTransaction txn;
  for (auto& r : rows) {
    ASSIGN_OR_RETURN([[maybe_unused]] RowId rid, InsertUnlocked(std::move(r)));
  }
  txn.Commit();
  return Status::OK();
}

Status Table::Delete(RowId rid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return DeleteUnlocked(rid);
}

Status Table::DeleteUnlocked(RowId rid) {
  if (!IsLive(rid)) {
    return Status::NotFound("row " + std::to_string(rid) + " is not live");
  }
  RowVersion* v = head(rid);
  if (sink_ != nullptr) RETURN_IF_ERROR(sink_->OnDelete(*this, v->row));
  int64_t delta = RowFootprint(v->row);
  if (!mvcc_) {
    std::unique_lock<std::shared_mutex> il(index_mu_);
    for (auto& idx : indexes_) {
      if (idx->Remove(v->row, rid)) {
        tracked_index_bytes_ -= IndexEntryBytes(*idx);
        IndexBytesGauge().Add(-IndexEntryBytes(*idx));
      }
    }
    v->deleted.store(1, std::memory_order_release);
  } else {
    // Index entries stay: older snapshots still reach this version. The
    // row's bytes move from the live gauge to the version gauge until GC.
    std::vector<std::atomic<uint64_t>*> own;
    StampDelete(v, &own);
    tracked_version_bytes_ += delta;
    VersionBytesGauge().Add(delta);
    if (!own.empty()) MvccEngine::Global().CommitStamps(own);
  }
  tracked_row_bytes_ -= delta;
  RowBytesGauge().Add(-delta);
  live_rows_.fetch_sub(1, std::memory_order_release);
  return Status::OK();
}

Status Table::Update(RowId rid, Row row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return UpdateUnlocked(rid, std::move(row));
}

Status Table::UpdateUnlocked(RowId rid, Row row) {
  if (!IsLive(rid)) {
    return Status::NotFound("row " + std::to_string(rid) + " is not live");
  }
  RETURN_IF_ERROR(schema_.ValidateRow(row));
  RowVersion* old = head(rid);
  if (sink_ != nullptr) {
    RETURN_IF_ERROR(sink_->OnUpdate(*this, old->row, row));
  }
  if (!mvcc_) {
    std::unique_lock<std::shared_mutex> il(index_mu_);
    for (auto& idx : indexes_) idx->Remove(old->row, rid);
    int64_t delta = RowFootprint(row) - RowFootprint(old->row);
    tracked_row_bytes_ += delta;
    RowBytesGauge().Add(delta);
    old->row = std::move(row);
    for (auto& idx : indexes_) idx->Add(old->row, rid);
    return Status::OK();
  }
  auto* v = new RowVersion(std::move(row));
  v->next.store(old, std::memory_order_relaxed);
  // The new version's birth and the old version's death are one commit.
  std::vector<std::atomic<uint64_t>*> own;
  StampCreate(v, &own);
  StampDelete(old, &own);
  auto [c, off] = SlotPos(rid);
  chunks_[c].load(std::memory_order_relaxed)
      ->slots[off]
      .store(v, std::memory_order_release);
  int64_t old_fp = RowFootprint(old->row);
  int64_t new_fp = RowFootprint(v->row);
  tracked_row_bytes_ += new_fp - old_fp;
  RowBytesGauge().Add(new_fp - old_fp);
  tracked_version_bytes_ += old_fp;
  VersionBytesGauge().Add(old_fp);
  {
    // Lazy maintenance: only keys that changed get new entries; unchanged
    // keys keep the entry shared between the two versions.
    std::unique_lock<std::shared_mutex> il(index_mu_);
    for (auto& idx : indexes_) {
      if (idx->Add(v->row, rid)) {
        tracked_index_bytes_ += IndexEntryBytes(*idx);
        IndexBytesGauge().Add(IndexEntryBytes(*idx));
      }
    }
  }
  if (!own.empty()) MvccEngine::Global().CommitStamps(own);
  return Status::OK();
}

void Table::Truncate() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::unique_lock<std::shared_mutex> il(index_mu_);
  FreeAllVersions();
  for (size_t c = 0; c < kNumChunks; ++c) {
    chunks_[c].store(nullptr, std::memory_order_release);
  }
  num_slots_.store(0, std::memory_order_release);
  live_rows_.store(0, std::memory_order_release);
  for (auto& idx : indexes_) {
    idx = std::make_unique<Index>(idx->name(), this, idx->key_columns());
  }
  RowBytesGauge().Add(-tracked_row_bytes_);
  IndexBytesGauge().Add(-tracked_index_bytes_);
  VersionBytesGauge().Add(-tracked_version_bytes_);
  tracked_row_bytes_ = 0;
  tracked_index_bytes_ = 0;
  tracked_version_bytes_ = 0;
}

void Table::FreeAllVersions() {
  for (size_t c = 0; c < kNumChunks; ++c) {
    Chunk* ch = chunks_[c].load(std::memory_order_acquire);
    if (ch == nullptr) continue;
    for (auto& slot : ch->slots) {
      RowVersion* v = slot.load(std::memory_order_relaxed);
      while (v != nullptr) {
        RowVersion* next = v->next.load(std::memory_order_relaxed);
        delete v;
        v = next;
      }
      slot.store(nullptr, std::memory_order_relaxed);
    }
    delete ch;
  }
  for (auto& [stamp, v] : limbo_) delete v;
  limbo_.clear();
}

Status Table::CreateIndex(const std::string& name,
                          const std::vector<std::string>& column_names) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return CreateIndexUnlocked(name, column_names);
}

Status Table::CreateIndexUnlocked(const std::string& name,
                                  const std::vector<std::string>& column_names) {
  if (FindIndex(name) != nullptr) {
    return Status::AlreadyExists("index '" + name + "'");
  }
  std::vector<size_t> cols;
  cols.reserve(column_names.size());
  for (const auto& cn : column_names) {
    ASSIGN_OR_RETURN(size_t i, schema_.IndexOf(cn));
    cols.push_back(i);
  }
  if (sink_ != nullptr) {
    RETURN_IF_ERROR(sink_->OnCreateIndex(*this, name, column_names));
  }
  auto idx = std::make_unique<Index>(name, this, std::move(cols));
  // Backfills newest live rows only. Versions already dead at this point
  // never enter the new index — safe because a plan can only pick this
  // index with a snapshot taken after this DDL committed (multi-statement
  // snapshots spanning it fail with TxnError instead; see database.h).
  size_t slots = num_slots_.load(std::memory_order_relaxed);
  for (RowId rid = 0; rid < slots; ++rid) {
    if (IsLive(rid)) idx->Add(head(rid)->row, rid);
  }
  int64_t delta =
      static_cast<int64_t>(idx->num_entries()) * IndexEntryBytes(*idx);
  tracked_index_bytes_ += delta;
  IndexBytesGauge().Add(delta);
  {
    std::unique_lock<std::shared_mutex> il(index_mu_);
    indexes_.push_back(std::move(idx));
  }
  return Status::OK();
}

const Index* Table::FindIndex(const std::string& name) const {
  for (const auto& idx : indexes_) {
    if (idx->name() == name) return idx.get();
  }
  return nullptr;
}

std::vector<const Index*> Table::IndexList() const {
  std::shared_lock<std::shared_mutex> il(index_mu_);
  std::vector<const Index*> out;
  out.reserve(indexes_.size());
  for (const auto& idx : indexes_) out.push_back(idx.get());
  return out;
}

const Index* Table::FindIndexByColumns(const std::vector<size_t>& cols) const {
  std::shared_lock<std::shared_mutex> il(index_mu_);
  for (const auto& idx : indexes_) {
    if (idx->MatchesPrefix(cols)) return idx.get();
  }
  return nullptr;
}

std::vector<Row> Table::IndexEntriesInRange(const Index* index,
                                            const Row& lower,
                                            bool lower_inclusive,
                                            const Row& upper,
                                            bool upper_inclusive) const {
  std::shared_lock<std::shared_mutex> il(index_mu_);
  return index->EntriesInRange(lower, lower_inclusive, upper, upper_inclusive);
}

TableGcStats Table::CollectGarbage(Lsn bound, Lsn floor) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::unique_lock<std::shared_mutex> il(index_mu_);
  TableGcStats stats;
  std::vector<RowVersion*> unlinked;
  if (mvcc_) {
    size_t slots = num_slots_.load(std::memory_order_relaxed);
    for (RowId rid = 0; rid < slots; ++rid) {
      auto [c, off] = SlotPos(rid);
      Chunk* ch = chunks_[c].load(std::memory_order_relaxed);
      std::atomic<RowVersion*>& slot = ch->slots[off];
      RowVersion* h = slot.load(std::memory_order_relaxed);
      if (h == nullptr) continue;
      // Pivot: the first (newest-first) version every snapshot >= bound
      // resolves to, i.e. with a committed created <= bound. Readers never
      // dereference past their resolving version, so everything below the
      // pivot is unreachable once unlinked.
      RowVersion* prev = nullptr;
      RowVersion* pivot = h;
      while (pivot != nullptr) {
        uint64_t created = pivot->created.load(std::memory_order_relaxed);
        if (StampIsCommitted(created) && created <= bound) break;
        prev = pivot;
        pivot = pivot->next.load(std::memory_order_relaxed);
      }
      if (pivot == nullptr) continue;
      RowVersion* dead = nullptr;
      RowVersion* retained_tail = pivot;  // newest..retained_tail survive
      uint64_t d = pivot->deleted.load(std::memory_order_relaxed);
      if (StampIsCommitted(d) && d != 0 && d <= bound) {
        // The pivot itself was deleted before any live snapshot: the whole
        // sub-chain from the pivot down is unreachable.
        if (prev != nullptr) {
          prev->next.store(nullptr, std::memory_order_release);
        } else {
          slot.store(nullptr, std::memory_order_release);
        }
        dead = pivot;
        retained_tail = prev;
      } else {
        dead = pivot->next.load(std::memory_order_relaxed);
        pivot->next.store(nullptr, std::memory_order_release);
      }
      for (RowVersion* p = dead; p != nullptr;
           p = p->next.load(std::memory_order_relaxed)) {
        // Drop index entries that served only this version: an entry is
        // kept while any retained version still carries the same key.
        for (auto& idx : indexes_) {
          Row key = idx->MakeKey(p->row, rid);
          bool shared = false;
          for (RowVersion* r = (retained_tail == nullptr ? nullptr : h);
               r != nullptr; r = r->next.load(std::memory_order_relaxed)) {
            if (CompareRows(idx->MakeKey(r->row, rid), key) == 0) {
              shared = true;
              break;
            }
            if (r == retained_tail) break;
          }
          if (!shared && idx->tree_.Erase(key)) {
            tracked_index_bytes_ -= IndexEntryBytes(*idx);
            IndexBytesGauge().Add(-IndexEntryBytes(*idx));
            ++stats.index_entries_removed;
          }
        }
        int64_t fp = RowFootprint(p->row);
        stats.bytes_unlinked += fp;
        ++stats.versions_freed;
        unlinked.push_back(p);
      }
    }
  }
  if (!unlinked.empty()) {
    tracked_version_bytes_ -= stats.bytes_unlinked;
    VersionBytesGauge().Add(-stats.bytes_unlinked);
    ReclaimedBytesGauge().Add(stats.bytes_unlinked);
    // Stamp with the visible LSN observed *after* the unlinks: any reader
    // that could still hold a pointer into the old chain acquired its
    // snapshot at or below this value and blocks the free until it ends.
    Lsn stamp = MvccEngine::Global().visible_lsn();
    for (RowVersion* p : unlinked) limbo_.emplace_back(stamp, p);
  }
  ReclaimLimboLocked(floor, &stats);
  return stats;
}

size_t Table::ReclaimLimboLocked(Lsn floor, TableGcStats* stats) {
  size_t freed = 0;
  while (!limbo_.empty() && limbo_.front().first < floor) {
    delete limbo_.front().second;
    limbo_.pop_front();
    ++freed;
  }
  if (stats != nullptr) stats->versions_reclaimed += freed;
  return freed;
}

size_t Table::LimboSize() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return limbo_.size();
}

size_t Table::FootprintBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FootprintBytesUnlocked();
}

size_t Table::FootprintBytesUnlocked() const {
  size_t bytes = 0;
  size_t slots = num_slots_.load(std::memory_order_acquire);
  for (RowId rid = 0; rid < slots; ++rid) {
    if (!IsLive(rid)) continue;
    for (const Value& v : head(rid)->row) bytes += v.FootprintBytes();
  }
  for (const auto& idx : indexes_) {
    // Each index entry stores key columns + rid.
    bytes += idx->num_entries() * (idx->key_columns().size() + 1) * sizeof(Value);
  }
  return bytes;
}

}  // namespace xmlrdb::rdb
