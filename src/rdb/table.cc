#include "rdb/table.h"

#include <algorithm>
#include <mutex>

#include "common/resource_tracker.h"

namespace xmlrdb::rdb {

namespace {

ResourceGauge& RowBytesGauge() {
  static ResourceGauge& g =
      ResourceTracker::Global().GetGauge("tables.row_bytes");
  return g;
}

ResourceGauge& IndexBytesGauge() {
  static ResourceGauge& g =
      ResourceTracker::Global().GetGauge("tables.index_bytes");
  return g;
}

int64_t RowFootprint(const Row& row) {
  int64_t bytes = 0;
  for (const Value& v : row) bytes += static_cast<int64_t>(v.FootprintBytes());
  return bytes;
}

// Matches the per-entry cost FootprintBytesUnlocked charges: key columns + rid.
int64_t IndexEntryBytes(const Index& idx) {
  return static_cast<int64_t>((idx.key_columns().size() + 1) * sizeof(Value));
}

}  // namespace

Index::Index(std::string name, const Table* table, std::vector<size_t> key_columns)
    : name_(std::move(name)), table_(table), key_columns_(std::move(key_columns)) {}

Row Index::MakeKey(const Row& row, RowId rid) const {
  Row key;
  key.reserve(key_columns_.size() + 1);
  for (size_t c : key_columns_) key.push_back(row[c]);
  key.push_back(Value(static_cast<int64_t>(rid)));
  return key;
}

void Index::Add(const Row& row, RowId rid) { tree_.Insert(MakeKey(row, rid)); }

void Index::Remove(const Row& row, RowId rid) { tree_.Erase(MakeKey(row, rid)); }

std::vector<RowId> Index::LookupEqual(const Row& key) const {
  return LookupRange(key, true, key, true);
}

std::vector<RowId> Index::LookupRange(const Row& lower, bool lower_inclusive,
                                      const Row& upper,
                                      bool upper_inclusive) const {
  std::vector<RowId> out;
  BTree::Iterator it =
      lower.empty() ? tree_.Begin() : tree_.SeekAtLeast(lower, lower_inclusive);
  while (it.Valid()) {
    const Row& k = it.key();
    if (!upper.empty()) {
      int c = PrefixCompareRows(k, upper);
      if (c > 0 || (!upper_inclusive && c == 0)) break;
    }
    out.push_back(static_cast<RowId>(k.back().AsInt()));
    it.Next();
  }
  return out;
}

bool Index::MatchesPrefix(const std::vector<size_t>& cols) const {
  if (cols.size() > key_columns_.size()) return false;
  return std::equal(cols.begin(), cols.end(), key_columns_.begin());
}

Table::~Table() {
  RowBytesGauge().Add(-tracked_row_bytes_);
  IndexBytesGauge().Add(-tracked_index_bytes_);
}

Result<RowId> Table::Insert(Row row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return InsertUnlocked(std::move(row));
}

Result<RowId> Table::InsertUnlocked(Row row) {
  RETURN_IF_ERROR(schema_.ValidateRow(row));
  if (sink_ != nullptr) RETURN_IF_ERROR(sink_->OnInsert(*this, row));
  RowId rid = rows_.size();
  rows_.push_back(std::move(row));
  deleted_.push_back(false);
  ++live_rows_;
  int64_t delta = RowFootprint(rows_.back());
  tracked_row_bytes_ += delta;
  RowBytesGauge().Add(delta);
  for (auto& idx : indexes_) {
    idx->Add(rows_.back(), rid);
    tracked_index_bytes_ += IndexEntryBytes(*idx);
    IndexBytesGauge().Add(IndexEntryBytes(*idx));
  }
  return rid;
}

Status Table::InsertMany(std::vector<Row> rows) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& r : rows) {
    ASSIGN_OR_RETURN([[maybe_unused]] RowId rid, InsertUnlocked(std::move(r)));
  }
  return Status::OK();
}

Status Table::Delete(RowId rid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return DeleteUnlocked(rid);
}

Status Table::DeleteUnlocked(RowId rid) {
  if (!IsLive(rid)) {
    return Status::NotFound("row " + std::to_string(rid) + " is not live");
  }
  if (sink_ != nullptr) RETURN_IF_ERROR(sink_->OnDelete(*this, rows_[rid]));
  for (auto& idx : indexes_) {
    idx->Remove(rows_[rid], rid);
    tracked_index_bytes_ -= IndexEntryBytes(*idx);
    IndexBytesGauge().Add(-IndexEntryBytes(*idx));
  }
  int64_t delta = RowFootprint(rows_[rid]);
  tracked_row_bytes_ -= delta;
  RowBytesGauge().Add(-delta);
  deleted_[rid] = true;
  --live_rows_;
  return Status::OK();
}

Status Table::Update(RowId rid, Row row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return UpdateUnlocked(rid, std::move(row));
}

Status Table::UpdateUnlocked(RowId rid, Row row) {
  if (!IsLive(rid)) {
    return Status::NotFound("row " + std::to_string(rid) + " is not live");
  }
  RETURN_IF_ERROR(schema_.ValidateRow(row));
  if (sink_ != nullptr) {
    RETURN_IF_ERROR(sink_->OnUpdate(*this, rows_[rid], row));
  }
  for (auto& idx : indexes_) idx->Remove(rows_[rid], rid);
  int64_t delta = RowFootprint(row) - RowFootprint(rows_[rid]);
  tracked_row_bytes_ += delta;
  RowBytesGauge().Add(delta);
  rows_[rid] = std::move(row);
  for (auto& idx : indexes_) idx->Add(rows_[rid], rid);
  return Status::OK();
}

void Table::Truncate() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  rows_.clear();
  deleted_.clear();
  live_rows_ = 0;
  for (auto& idx : indexes_) {
    idx = std::make_unique<Index>(idx->name(), this, idx->key_columns());
  }
  RowBytesGauge().Add(-tracked_row_bytes_);
  IndexBytesGauge().Add(-tracked_index_bytes_);
  tracked_row_bytes_ = 0;
  tracked_index_bytes_ = 0;
}

Status Table::CreateIndex(const std::string& name,
                          const std::vector<std::string>& column_names) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return CreateIndexUnlocked(name, column_names);
}

Status Table::CreateIndexUnlocked(const std::string& name,
                                  const std::vector<std::string>& column_names) {
  if (FindIndex(name) != nullptr) {
    return Status::AlreadyExists("index '" + name + "'");
  }
  std::vector<size_t> cols;
  cols.reserve(column_names.size());
  for (const auto& cn : column_names) {
    ASSIGN_OR_RETURN(size_t i, schema_.IndexOf(cn));
    cols.push_back(i);
  }
  if (sink_ != nullptr) {
    RETURN_IF_ERROR(sink_->OnCreateIndex(*this, name, column_names));
  }
  auto idx = std::make_unique<Index>(name, this, std::move(cols));
  for (RowId rid = 0; rid < rows_.size(); ++rid) {
    if (!deleted_[rid]) idx->Add(rows_[rid], rid);
  }
  int64_t delta =
      static_cast<int64_t>(idx->num_entries()) * IndexEntryBytes(*idx);
  tracked_index_bytes_ += delta;
  IndexBytesGauge().Add(delta);
  indexes_.push_back(std::move(idx));
  return Status::OK();
}

const Index* Table::FindIndex(const std::string& name) const {
  for (const auto& idx : indexes_) {
    if (idx->name() == name) return idx.get();
  }
  return nullptr;
}

const Index* Table::FindIndexByColumns(const std::vector<size_t>& cols) const {
  for (const auto& idx : indexes_) {
    if (idx->MatchesPrefix(cols)) return idx.get();
  }
  return nullptr;
}

size_t Table::FootprintBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FootprintBytesUnlocked();
}

size_t Table::FootprintBytesUnlocked() const {
  size_t bytes = 0;
  for (RowId rid = 0; rid < rows_.size(); ++rid) {
    if (deleted_[rid]) continue;
    for (const Value& v : rows_[rid]) bytes += v.FootprintBytes();
  }
  for (const auto& idx : indexes_) {
    // Each index entry stores key columns + rid.
    bytes += idx->num_entries() * (idx->key_columns().size() + 1) * sizeof(Value);
  }
  return bytes;
}

}  // namespace xmlrdb::rdb
