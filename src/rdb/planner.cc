#include "rdb/planner.h"

#include <algorithm>
#include <map>
#include <set>

namespace xmlrdb::rdb {

namespace {

/// Splits "alias.col" into its parts; unqualified names resolve against the
/// FROM list (unique match required).
struct NameResolver {
  // alias -> table
  std::vector<std::pair<std::string, const Table*>> tables;

  Result<std::string> AliasOf(const std::string& column_name) const {
    size_t dot = column_name.find('.');
    if (dot != std::string::npos) {
      std::string alias = column_name.substr(0, dot);
      for (const auto& [a, t] : tables) {
        if (a == alias) return alias;
      }
      return Status::NotFound("unknown table alias '" + alias + "'");
    }
    std::string found;
    for (const auto& [a, t] : tables) {
      if (t->schema().TryIndexOf(column_name).has_value()) {
        if (!found.empty()) {
          return Status::InvalidArgument("ambiguous column '" + column_name + "'");
        }
        found = a;
      }
    }
    if (found.empty()) {
      return Status::NotFound("column '" + column_name + "' not found");
    }
    return found;
  }

  const Table* TableOf(const std::string& alias) const {
    for (const auto& [a, t] : tables) {
      if (a == alias) return t;
    }
    return nullptr;
  }
};

/// Which aliases a conjunct references.
Result<std::set<std::string>> AliasesOf(const Expr& e, const NameResolver& nr) {
  std::vector<std::string> cols;
  e.CollectColumns(&cols);
  std::set<std::string> out;
  for (const auto& c : cols) {
    ASSIGN_OR_RETURN(std::string a, nr.AliasOf(c));
    out.insert(a);
  }
  return out;
}

struct JoinPred {
  std::string left_alias, right_alias;
  std::string left_col, right_col;  // fully qualified
  ExprPtr original;                 // kept in case we need it as a filter
};

/// Pattern-matches `alias.col = other.col`.
bool MatchEquiJoin(const Expr& e, const NameResolver& nr, JoinPred* out) {
  if (e.kind() != Expr::Kind::kBinary) return false;
  const auto& bin = static_cast<const BinaryExpr&>(e);
  if (bin.op() != BinOp::kEq) return false;
  if (bin.left()->kind() != Expr::Kind::kColumn ||
      bin.right()->kind() != Expr::Kind::kColumn) {
    return false;
  }
  const auto& l = static_cast<const ColumnExpr&>(*bin.left());
  const auto& r = static_cast<const ColumnExpr&>(*bin.right());
  auto la = nr.AliasOf(l.name());
  auto ra = nr.AliasOf(r.name());
  if (!la.ok() || !ra.ok() || la.value() == ra.value()) return false;
  out->left_alias = la.value();
  out->right_alias = ra.value();
  out->left_col = l.name();
  out->right_col = r.name();
  return true;
}

/// Pattern-matches `alias.col OP literal` or `alias.col OP ?` (either operand
/// order). For a literal the value is known at plan time; for a parameter only
/// the expression is kept and the scan resolves it at Open().
struct ColOpLit {
  std::string column;  // qualified as written
  size_t col_index;    // in the table schema
  BinOp op;            // normalised so the column is on the left
  Value literal;       // valid only when !is_param
  ExprPtr value;       // clone of the value operand (literal or param)
  bool is_param = false;
};

BinOp FlipOp(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default: return op;
  }
}

bool MatchColOpLit(const Expr& e, const Table& table, ColOpLit* out) {
  if (e.kind() != Expr::Kind::kBinary) return false;
  const auto& bin = static_cast<const BinaryExpr&>(e);
  switch (bin.op()) {
    case BinOp::kEq: case BinOp::kLt: case BinOp::kLe:
    case BinOp::kGt: case BinOp::kGe:
      break;
    default:
      return false;
  }
  auto is_value = [](Expr::Kind k) {
    return k == Expr::Kind::kLiteral || k == Expr::Kind::kParam;
  };
  const Expr* col = bin.left();
  const Expr* val = bin.right();
  BinOp op = bin.op();
  if (is_value(col->kind()) && val->kind() == Expr::Kind::kColumn) {
    std::swap(col, val);
    op = FlipOp(op);
  }
  if (col->kind() != Expr::Kind::kColumn || !is_value(val->kind())) {
    return false;
  }
  const auto& c = static_cast<const ColumnExpr&>(*col);
  // Strip the alias qualifier for schema lookup.
  std::string bare = c.name();
  size_t dot = bare.find('.');
  if (dot != std::string::npos) bare = bare.substr(dot + 1);
  auto idx = table.schema().TryIndexOf(bare);
  if (!idx.has_value()) return false;
  DataType ct = table.schema().column(*idx).type;
  if (val->kind() == Expr::Kind::kLiteral) {
    const Value& v = static_cast<const LiteralExpr&>(*val).value();
    // Only index on type-compatible literals (string col vs string lit etc.);
    // mismatched types fall back to filtering.
    bool compatible =
        v.type() == ct ||
        (ct == DataType::kDouble && v.type() == DataType::kInt) ||
        (ct == DataType::kInt && v.type() == DataType::kDouble &&
         op == BinOp::kEq);
    if (!compatible) return false;
    out->literal = v;
  } else {
    // Parameter value is unknown until execution: the scan checks type
    // compatibility at Open() and widens the bound if it cannot compare.
    out->is_param = true;
  }
  out->column = c.name();
  out->col_index = *idx;
  out->op = op;
  out->value = val->Clone();
  return true;
}

/// Builds the access path for one table: picks an index whose key prefix is
/// covered by equality conjuncts (optionally + one range column), otherwise a
/// sequential scan — parallel when the options allow it and the table is big
/// enough, with the leftover conjuncts pushed into the scan workers.
/// Consumed conjunct indexes are recorded in `used`.
PlanPtr BuildScan(const Table* table, const std::string& alias,
                  std::vector<ExprPtr>* conjuncts,
                  const PlannerOptions& options) {
  // Gather sargable predicates.
  std::vector<std::pair<size_t, ColOpLit>> sargs;  // (conjunct idx, match)
  for (size_t i = 0; i < conjuncts->size(); ++i) {
    ColOpLit m;
    if ((*conjuncts)[i] != nullptr && MatchColOpLit(*(*conjuncts)[i], *table, &m)) {
      sargs.emplace_back(i, std::move(m));
    }
  }
  const Index* best_index = nullptr;
  size_t best_score = 0;
  std::vector<size_t> best_used;
  Row best_lower, best_upper;
  std::vector<ExprPtr> best_lower_exprs, best_upper_exprs;
  bool best_lower_inc = true, best_upper_inc = true;
  bool best_has_param = false;

  // Latched copy: planning runs without table locks under MVCC, so a
  // concurrent CREATE INDEX must not invalidate this iteration.
  for (const Index* index : table->IndexList()) {
    Row lower, upper;
    std::vector<ExprPtr> lower_exprs, upper_exprs;
    bool lower_inc = true, upper_inc = true;
    bool has_param = false;
    std::vector<size_t> used;
    size_t matched = 0;
    bool open = true;  // still matching equality prefix
    for (size_t kc : index->key_columns()) {
      if (!open) break;
      // Find an equality sarg on this column.
      bool eq_found = false;
      for (const auto& [ci, m] : sargs) {
        if (m.col_index == kc && m.op == BinOp::kEq) {
          lower.push_back(m.literal);
          upper.push_back(m.literal);
          lower_exprs.push_back(m.value->Clone());
          upper_exprs.push_back(m.value->Clone());
          has_param = has_param || m.is_param;
          used.push_back(ci);
          ++matched;
          eq_found = true;
          break;
        }
      }
      if (eq_found) continue;
      // Otherwise try range sargs on this column, then stop extending.
      bool have_lower = false, have_upper = false;
      Value lo, hi;
      ExprPtr lo_expr, hi_expr;
      bool lo_inc = true, hi_inc = true;
      for (const auto& [ci, m] : sargs) {
        if (m.col_index != kc) continue;
        if ((m.op == BinOp::kGt || m.op == BinOp::kGe) && !have_lower) {
          lo = m.literal;
          lo_expr = m.value->Clone();
          lo_inc = m.op == BinOp::kGe;
          has_param = has_param || m.is_param;
          have_lower = true;
          used.push_back(ci);
        } else if ((m.op == BinOp::kLt || m.op == BinOp::kLe) && !have_upper) {
          hi = m.literal;
          hi_expr = m.value->Clone();
          hi_inc = m.op == BinOp::kLe;
          has_param = has_param || m.is_param;
          have_upper = true;
          used.push_back(ci);
        }
      }
      if (have_lower) {
        lower.push_back(lo);
        lower_exprs.push_back(std::move(lo_expr));
        lower_inc = lo_inc;
        ++matched;
      }
      if (have_upper) {
        upper.push_back(hi);
        upper_exprs.push_back(std::move(hi_expr));
        upper_inc = hi_inc;
        ++matched;
      }
      open = false;
    }
    if (matched > best_score) {
      best_score = matched;
      best_index = index;
      best_used = used;
      best_lower = lower;
      best_upper = upper;
      best_lower_exprs = std::move(lower_exprs);
      best_upper_exprs = std::move(upper_exprs);
      best_lower_inc = lower_inc;
      best_upper_inc = upper_inc;
      best_has_param = has_param;
    }
  }

  PlanPtr scan;
  if (best_index != nullptr && best_has_param) {
    // Parameterized bounds: the scan evaluates them at Open() and may widen
    // the range if a bound value turns out type-incompatible with the key
    // column. To stay correct under widening, every used conjunct is KEPT as
    // a residual filter instead of being consumed.
    scan = std::make_unique<IndexScanNode>(
        table, best_index, alias, std::move(best_lower_exprs), best_lower_inc,
        std::move(best_upper_exprs), best_upper_inc);
  } else if (best_index != nullptr) {
    scan = std::make_unique<IndexScanNode>(table, best_index, alias, best_lower,
                                           best_lower_inc, best_upper,
                                           best_upper_inc);
    // Consume the used conjuncts.
    std::sort(best_used.begin(), best_used.end(), std::greater<>());
    for (size_t ci : best_used) {
      (*conjuncts)[ci] = nullptr;
    }
  }
  // Remaining conjuncts become a filter above the scan (or inside it, for a
  // parallel scan).
  std::vector<ExprPtr> remaining;
  for (auto& c : *conjuncts) {
    if (c != nullptr) remaining.push_back(std::move(c));
  }
  conjuncts->clear();
  ExprPtr filter = AndAll(std::move(remaining));
  if (scan == nullptr && options.max_parallelism > 1 &&
      table->num_slots() >= options.parallel_scan_min_rows) {
    // Morsel-parallel scan with the filter pushed into the workers.
    return std::make_unique<ParallelSeqScanNode>(
        table, alias, std::move(filter), options.max_parallelism, options.pool);
  }
  if (scan == nullptr) scan = std::make_unique<SeqScanNode>(table, alias);
  if (filter != nullptr) {
    scan = std::make_unique<FilterNode>(std::move(scan), std::move(filter));
  }
  return scan;
}

/// Extracts AggCallExprs, replacing each with a column reference to the
/// aggregate's output column. Returns the rewritten expression.
ExprPtr ExtractAggs(ExprPtr e, std::vector<AggSpec>* specs,
                    std::map<std::string, std::string>* names) {
  if (e == nullptr) return nullptr;
  switch (e->kind()) {
    case Expr::Kind::kAgg: {
      auto* agg = static_cast<AggCallExpr*>(e.get());
      std::string sig = agg->ToString();
      auto it = names->find(sig);
      if (it != names->end()) return Col(it->second);
      std::string out_name = "_agg" + std::to_string(specs->size());
      AggSpec spec;
      if (agg->func_name() == "COUNT" && agg->arg() == nullptr) {
        spec.func = AggFunc::kCountStar;
      } else if (agg->func_name() == "COUNT") {
        spec.func = AggFunc::kCount;
      } else if (agg->func_name() == "SUM") {
        spec.func = AggFunc::kSum;
      } else if (agg->func_name() == "AVG") {
        spec.func = AggFunc::kAvg;
      } else if (agg->func_name() == "MIN") {
        spec.func = AggFunc::kMin;
      } else {
        spec.func = AggFunc::kMax;
      }
      spec.arg = agg->TakeArg();
      spec.output_name = out_name;
      specs->push_back(std::move(spec));
      (*names)[sig] = out_name;
      return Col(out_name);
    }
    case Expr::Kind::kBinary: {
      auto* bin = static_cast<BinaryExpr*>(e.get());
      bin->SetLeft(ExtractAggs(bin->TakeLeft(), specs, names));
      bin->SetRight(ExtractAggs(bin->TakeRight(), specs, names));
      return e;
    }
    case Expr::Kind::kNot: {
      auto* n = static_cast<NotExpr*>(e.get());
      n->SetChild(ExtractAggs(n->TakeChild(), specs, names));
      return e;
    }
    case Expr::Kind::kIsNull: {
      auto* n = static_cast<IsNullExpr*>(e.get());
      n->SetChild(ExtractAggs(n->TakeChild(), specs, names));
      return e;
    }
    case Expr::Kind::kLike: {
      auto* n = static_cast<LikeExpr*>(e.get());
      n->SetChild(ExtractAggs(n->TakeChild(), specs, names));
      return e;
    }
    case Expr::Kind::kInList: {
      auto* n = static_cast<InListExpr*>(e.get());
      n->SetChild(ExtractAggs(n->TakeChild(), specs, names));
      return e;
    }
    default:
      return e;
  }
}

bool ContainsAgg(const Expr& e) {
  switch (e.kind()) {
    case Expr::Kind::kAgg:
      return true;
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      return ContainsAgg(*bin.left()) || ContainsAgg(*bin.right());
    }
    case Expr::Kind::kNot:
      return ContainsAgg(*static_cast<const NotExpr&>(e).child());
    case Expr::Kind::kIsNull:
      return ContainsAgg(*static_cast<const IsNullExpr&>(e).child());
    case Expr::Kind::kLike:
      return ContainsAgg(*static_cast<const LikeExpr&>(e).child());
    case Expr::Kind::kInList:
      return ContainsAgg(*static_cast<const InListExpr&>(e).child());
    default:
      return false;
  }
}

}  // namespace

Result<PlanPtr> Planner::PlanSelect(const SelectStmt& stmt) const {
  if (stmt.from.empty()) {
    return Status::Unsupported("SELECT without FROM");
  }
  NameResolver nr;
  for (const auto& ref : stmt.from) {
    const Table* t = resolver_(ref.table);
    if (t == nullptr) return Status::NotFound("table '" + ref.table + "'");
    for (const auto& [a, _] : nr.tables) {
      if (a == ref.effective_alias()) {
        return Status::InvalidArgument("duplicate alias '" + a + "'");
      }
    }
    nr.tables.emplace_back(ref.effective_alias(), t);
  }

  // --- classify WHERE conjuncts ---
  std::vector<ExprPtr> conjuncts;
  if (stmt.where != nullptr) SplitConjuncts(stmt.where->Clone(), &conjuncts);

  std::map<std::string, std::vector<ExprPtr>> table_filters;
  std::vector<JoinPred> join_preds;
  std::vector<ExprPtr> residual;

  for (auto& c : conjuncts) {
    JoinPred jp;
    if (MatchEquiJoin(*c, nr, &jp)) {
      jp.original = std::move(c);
      join_preds.push_back(std::move(jp));
      continue;
    }
    ASSIGN_OR_RETURN(std::set<std::string> aliases, AliasesOf(*c, nr));
    if (aliases.size() <= 1) {
      std::string a = aliases.empty() ? nr.tables[0].first : *aliases.begin();
      table_filters[a].push_back(std::move(c));
    } else {
      residual.push_back(std::move(c));
    }
  }

  // --- build scans ---
  std::map<std::string, PlanPtr> scans;
  std::map<std::string, double> estimates;
  for (const auto& [alias, table] : nr.tables) {
    auto& filters = table_filters[alias];
    double est = static_cast<double>(table->num_rows());
    for (const auto& f : filters) {
      (void)f;
      est /= 10.0;  // heuristic selectivity per pushed-down predicate
    }
    estimates[alias] = std::max(est, 1.0);
    scans[alias] = BuildScan(table, alias, &filters, options_);
  }

  // --- join ordering (greedy) ---
  std::vector<std::string> remaining;
  for (const auto& [alias, _] : nr.tables) remaining.push_back(alias);
  std::sort(remaining.begin(), remaining.end(),
            [&](const std::string& a, const std::string& b) {
              return estimates[a] < estimates[b];
            });

  std::set<std::string> joined;
  PlanPtr plan = std::move(scans[remaining.front()]);
  joined.insert(remaining.front());
  remaining.erase(remaining.begin());
  std::vector<bool> pred_used(join_preds.size(), false);

  while (!remaining.empty()) {
    // Prefer an alias connected to the joined set by an equi-join predicate.
    ptrdiff_t pick = -1;
    for (size_t i = 0; i < remaining.size(); ++i) {
      for (size_t p = 0; p < join_preds.size(); ++p) {
        if (pred_used[p]) continue;
        const JoinPred& jp = join_preds[p];
        bool connects =
            (joined.count(jp.left_alias) > 0 && jp.right_alias == remaining[i]) ||
            (joined.count(jp.right_alias) > 0 && jp.left_alias == remaining[i]);
        if (connects) {
          pick = static_cast<ptrdiff_t>(i);
          break;
        }
      }
      if (pick >= 0) break;
    }
    bool connected = pick >= 0;
    if (pick < 0) pick = 0;
    std::string alias = remaining[static_cast<size_t>(pick)];
    remaining.erase(remaining.begin() + pick);

    if (connected) {
      // Gather all join predicates between the joined set and `alias`.
      std::vector<ExprPtr> lkeys, rkeys;
      for (size_t p = 0; p < join_preds.size(); ++p) {
        if (pred_used[p]) continue;
        JoinPred& jp = join_preds[p];
        if (joined.count(jp.left_alias) > 0 && jp.right_alias == alias) {
          lkeys.push_back(Col(jp.left_col));
          rkeys.push_back(Col(jp.right_col));
          pred_used[p] = true;
        } else if (joined.count(jp.right_alias) > 0 && jp.left_alias == alias) {
          lkeys.push_back(Col(jp.right_col));
          rkeys.push_back(Col(jp.left_col));
          pred_used[p] = true;
        }
      }
      plan = std::make_unique<HashJoinNode>(std::move(plan),
                                            std::move(scans[alias]),
                                            std::move(lkeys), std::move(rkeys),
                                            nullptr);
    } else {
      plan = std::make_unique<NestedLoopJoinNode>(std::move(plan),
                                                  std::move(scans[alias]),
                                                  nullptr);
    }
    joined.insert(alias);
  }

  // Join predicates between already-joined aliases that were not used as
  // hash keys become filters.
  for (size_t p = 0; p < join_preds.size(); ++p) {
    if (!pred_used[p]) residual.push_back(std::move(join_preds[p].original));
  }
  ExprPtr residual_filter = AndAll(std::move(residual));
  if (residual_filter != nullptr) {
    plan = std::make_unique<FilterNode>(std::move(plan),
                                        std::move(residual_filter));
  }

  // --- aggregation ---
  bool has_agg = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    if (item.expr != nullptr && ContainsAgg(*item.expr)) has_agg = true;
    if (item.expr != nullptr && item.expr->kind() == Expr::Kind::kAgg) {
      has_agg = true;
    }
  }
  if (stmt.having != nullptr) has_agg = true;

  std::vector<ExprPtr> out_exprs;
  std::vector<std::string> out_names;
  bool select_star = false;
  for (const auto& item : stmt.items) {
    if (item.star) {
      select_star = true;
      continue;
    }
    out_exprs.push_back(item.expr->Clone());
    out_names.push_back(item.alias);
  }
  if (select_star && !out_exprs.empty()) {
    return Status::Unsupported("SELECT * mixed with other select items");
  }

  if (has_agg) {
    if (select_star) return Status::Unsupported("SELECT * with aggregation");
    std::vector<AggSpec> specs;
    std::map<std::string, std::string> agg_names;
    for (auto& e : out_exprs) {
      e = ExtractAggs(std::move(e), &specs, &agg_names);
    }
    ExprPtr having =
        stmt.having != nullptr
            ? ExtractAggs(stmt.having->Clone(), &specs, &agg_names)
            : nullptr;
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    for (const auto& g : stmt.group_by) {
      group_exprs.push_back(g->Clone());
      group_names.emplace_back();
    }
    plan = std::make_unique<AggregateNode>(std::move(plan),
                                           std::move(group_exprs),
                                           std::move(group_names),
                                           std::move(specs));
    if (having != nullptr) {
      plan = std::make_unique<FilterNode>(std::move(plan), std::move(having));
    }
    // ORDER BY for aggregate queries may reference output aliases; rewrite
    // aggregate calls inside order keys too.
    std::vector<SortKey> sort_keys;
    for (const auto& o : stmt.order_by) {
      SortKey k;
      std::map<std::string, std::string> tmp = agg_names;
      std::vector<AggSpec> extra;  // new aggs in ORDER BY are unsupported
      k.expr = ExtractAggs(o.expr->Clone(), &extra, &tmp);
      if (!extra.empty()) {
        return Status::Unsupported(
            "ORDER BY aggregate not present in select list");
      }
      k.ascending = o.ascending;
      sort_keys.push_back(std::move(k));
    }
    plan = std::make_unique<ProjectNode>(std::move(plan), std::move(out_exprs),
                                         std::move(out_names));
    if (!sort_keys.empty()) {
      plan = std::make_unique<SortNode>(std::move(plan), std::move(sort_keys));
    }
  } else {
    // Sort before projection: ORDER BY may reference non-projected columns.
    if (!stmt.order_by.empty()) {
      std::vector<SortKey> sort_keys;
      for (const auto& o : stmt.order_by) {
        sort_keys.push_back(SortKey{o.expr->Clone(), o.ascending});
      }
      plan = std::make_unique<SortNode>(std::move(plan), std::move(sort_keys));
    }
    if (!select_star) {
      plan = std::make_unique<ProjectNode>(std::move(plan), std::move(out_exprs),
                                           std::move(out_names));
    }
  }

  if (stmt.distinct) {
    plan = std::make_unique<DistinctNode>(std::move(plan));
  }
  if (stmt.limit >= 0 || stmt.offset > 0) {
    plan = std::make_unique<LimitNode>(std::move(plan), stmt.limit, stmt.offset);
  }
  return plan;
}

}  // namespace xmlrdb::rdb
