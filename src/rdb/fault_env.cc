#include "rdb/fault_env.h"

#include <algorithm>
#include <set>

namespace xmlrdb::rdb {

namespace {

const char kCrashedMsg[] = "simulated crash: process is dead";

}  // namespace

/// Handle over one in-memory file; all state lives in the env so that a
/// crash can reach every open file at once.
class FaultInjectionFile : public WritableFile {
 public:
  FaultInjectionFile(FaultInjectionEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    return env_->WriteLocked(path_, data);
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    return env_->SyncLocked(path_);
  }

  Status Close() override { return Status::OK(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
};

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError(kCrashedMsg);
  FileRep& rep = files_[path];
  if (truncate) {
    rep.data.clear();
    rep.synced_len = 0;
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectionFile>(this, path));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError(kCrashedMsg);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("cannot open " + path);
  return it->second.data;
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(path) > 0) return true;
  // Directories are implicit: they exist when something lives under them.
  const std::string prefix = path + "/";
  auto it = files_.lower_bound(prefix);
  return it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
}

Status FaultInjectionEnv::CreateDirs(const std::string& /*path*/) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError(kCrashedMsg);
  return Status::OK();  // directories are implicit
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError(kCrashedMsg);
  const std::string prefix = path + "/";
  std::set<std::string> names;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    std::string rest = it->first.substr(prefix.size());
    names.insert(rest.substr(0, rest.find('/')));
  }
  return std::vector<std::string>(names.begin(), names.end());
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError(kCrashedMsg);
  if (files_.erase(path) == 0) return Status::IoError("remove " + path);
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError(kCrashedMsg);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::IoError("rename " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Status FaultInjectionEnv::RemoveDirRecursive(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError(kCrashedMsg);
  const std::string prefix = path + "/";
  files_.erase(path);
  auto it = files_.lower_bound(prefix);
  while (it != files_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0) {
    it = files_.erase(it);
  }
  return Status::OK();
}

Status FaultInjectionEnv::CrashPoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError(kCrashedMsg);
  const int64_t hits = ++crash_point_hits_[name];
  if (!armed_point_.empty() && armed_point_ == name && hits >= armed_hit_) {
    armed_point_.clear();
    CrashLocked();
    return Status::IoError("simulated crash at crash point '" + name + "'");
  }
  return Status::OK();
}

Status FaultInjectionEnv::WriteLocked(const std::string& path,
                                      std::string_view data) {
  if (crashed_) return Status::IoError(kCrashedMsg);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::IoError(path + ": file removed");
  if (fail_after_writes_ == 0) {
    const size_t keep = std::min(short_write_bytes_, data.size());
    it->second.data.append(data.data(), keep);
    return Status::IoError("injected write failure for " + path);
  }
  if (fail_after_writes_ > 0) --fail_after_writes_;
  ++data_writes_;
  it->second.data.append(data.data(), data.size());
  return Status::OK();
}

Status FaultInjectionEnv::SyncLocked(const std::string& path) {
  if (crashed_) return Status::IoError(kCrashedMsg);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::IoError(path + ": file removed");
  it->second.synced_len = it->second.data.size();
  ++syncs_;
  return Status::OK();
}

void FaultInjectionEnv::CrashLocked() {
  for (auto& [path, rep] : files_) {
    const size_t unsynced = rep.data.size() - rep.synced_len;
    const size_t keep = rep.synced_len + std::min(torn_tail_bytes_, unsynced);
    rep.data.resize(keep);
  }
  crashed_ = true;
}

void FaultInjectionEnv::set_fail_after_data_writes(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_after_writes_ = n;
}

void FaultInjectionEnv::set_short_write_bytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  short_write_bytes_ = bytes;
}

void FaultInjectionEnv::set_torn_tail_bytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  torn_tail_bytes_ = bytes;
}

void FaultInjectionEnv::ArmCrashPoint(const std::string& name, int64_t hit) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_point_ = name;
  armed_hit_ = crash_point_hits_[name] + hit;
}

void FaultInjectionEnv::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  CrashLocked();
}

void FaultInjectionEnv::ResetCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = false;
  armed_point_.clear();
}

bool FaultInjectionEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

std::map<std::string, int64_t> FaultInjectionEnv::CrashPointHits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crash_point_hits_;
}

void FaultInjectionEnv::ClearCrashPointHits() {
  std::lock_guard<std::mutex> lock(mu_);
  crash_point_hits_.clear();
}

int64_t FaultInjectionEnv::data_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_writes_;
}

int64_t FaultInjectionEnv::syncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return syncs_;
}

}  // namespace xmlrdb::rdb
