#include "rdb/plan.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace xmlrdb::rdb {

namespace {

/// Best-effort static type of an expression over `schema`.
DataType InferType(const Expr& e, const Schema& schema) {
  switch (e.kind()) {
    case Expr::Kind::kColumn: {
      const auto& col = static_cast<const ColumnExpr&>(e);
      auto idx = schema.TryIndexOf(col.name());
      return idx.has_value() ? schema.column(*idx).type : DataType::kString;
    }
    case Expr::Kind::kLiteral:
      return static_cast<const LiteralExpr&>(e).value().type();
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      switch (bin.op()) {
        case BinOp::kAnd: case BinOp::kOr:
        case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
        case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
          return DataType::kBool;
        default: {
          DataType l = InferType(*bin.left(), schema);
          DataType r = InferType(*bin.right(), schema);
          if (l == DataType::kString || r == DataType::kString) {
            return DataType::kString;
          }
          if (l == DataType::kDouble || r == DataType::kDouble) {
            return DataType::kDouble;
          }
          return DataType::kInt;
        }
      }
    }
    case Expr::Kind::kNot:
    case Expr::Kind::kIsNull:
    case Expr::Kind::kLike:
    case Expr::Kind::kInList:
      return DataType::kBool;
    case Expr::Kind::kAgg:
      return DataType::kDouble;  // resolved by AggregateNode before execution
    case Expr::Kind::kParam:
      return DataType::kString;  // runtime-typed; unknown until bound
  }
  return DataType::kString;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ExplainRec(const PlanNode& n, int depth, bool analyze, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(n.Describe());
  if (analyze) {
    const OperatorStats& s = n.stats();
    char buf[160];
    if (n.analyze_enabled()) {
      std::snprintf(buf, sizeof(buf),
                    "  (actual rows=%lld batches=%lld calls=%lld time=%.3fms)",
                    static_cast<long long>(s.rows),
                    static_cast<long long>(s.batches),
                    static_cast<long long>(s.next_calls),
                    static_cast<double>(s.open_ns + s.next_ns) / 1e6);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  (actual rows=%lld batches=%lld calls=%lld)",
                    static_cast<long long>(s.rows),
                    static_cast<long long>(s.batches),
                    static_cast<long long>(s.next_calls));
    }
    out->append(buf);
  }
  out->append("\n");
  for (const PlanNode* c : n.Children()) ExplainRec(*c, depth + 1, analyze, out);
}

}  // namespace

Status PlanNode::Open() {
  ++stats_.open_calls;
  if (!analyze_) return OpenImpl();
  int64_t t0 = NowNs();
  Status st = OpenImpl();
  stats_.open_ns += NowNs() - t0;
  return st;
}

Result<bool> PlanNode::Next(Row* out) {
  ++stats_.next_calls;
  if (!analyze_) {
    Result<bool> r = NextImpl(out);
    if (r.ok() && r.value()) ++stats_.rows;
    return r;
  }
  int64_t t0 = NowNs();
  Result<bool> r = NextImpl(out);
  stats_.next_ns += NowNs() - t0;
  if (r.ok() && r.value()) ++stats_.rows;
  return r;
}

Result<bool> PlanNode::NextBatch(Batch* out) {
  if (!analyze_) {
    Result<bool> r = NextBatchImpl(out);
    if (r.ok() && r.value()) {
      ++stats_.batches;
      stats_.rows += static_cast<int64_t>(out->ActiveCount());
    }
    return r;
  }
  int64_t t0 = NowNs();
  Result<bool> r = NextBatchImpl(out);
  stats_.next_ns += NowNs() - t0;
  if (r.ok() && r.value()) {
    ++stats_.batches;
    stats_.rows += static_cast<int64_t>(out->ActiveCount());
  }
  return r;
}

Result<bool> PlanNode::NextBatchImpl(Batch* out) {
  // Row-compat shim: pull through the operator's own row path. NextImpl is
  // called directly (not Next) so produced rows are counted once, by the
  // NextBatch wrapper; next_calls still tracks the pulls.
  out->Reset(output_schema().size());
  const size_t target = static_cast<size_t>(DefaultBatchSize());
  Row row;
  while (out->num_rows() < target) {
    ++stats_.next_calls;
    ASSIGN_OR_RETURN(bool more, NextImpl(&row));
    if (!more) break;
    out->AppendRowMove(std::move(row));
  }
  return out->num_rows() > 0;
}

void PlanNode::Close() { CloseImpl(); }

void PlanNode::EnableAnalyze() {
  analyze_ = true;
  // Children() exposes the subtree read-only for EXPLAIN; instrumentation is
  // the one writer that needs to reach through it.
  for (const PlanNode* c : Children()) {
    const_cast<PlanNode*>(c)->EnableAnalyze();
  }
}

void PlanNode::ResetStats() {
  stats_ = OperatorStats{};
  for (const PlanNode* c : Children()) {
    const_cast<PlanNode*>(c)->ResetStats();
  }
}

std::string PlanNode::OperatorName() const {
  std::string d = Describe();
  return d.substr(0, d.find('('));
}

std::string PlanNode::Explain() const {
  std::string out;
  ExplainRec(*this, 0, /*analyze=*/false, &out);
  return out;
}

std::string PlanNode::ExplainAnalyze() const {
  std::string out;
  ExplainRec(*this, 0, /*analyze=*/true, &out);
  return out;
}

int PlanNode::CountOperators(const std::string& prefix) const {
  int n = Describe().rfind(prefix, 0) == 0 ? 1 : 0;
  for (const PlanNode* c : Children()) n += c->CountOperators(prefix);
  return n;
}

Result<std::vector<Row>> ExecutePlan(PlanNode* plan) {
  RETURN_IF_ERROR(plan->Open());
  std::vector<Row> out;
  if (DefaultExecMode() == ExecMode::kBatch) {
    Batch batch;
    while (true) {
      auto more = plan->NextBatch(&batch);
      if (!more.ok()) {
        plan->Close();
        return more.status();
      }
      if (!more.value()) break;
      batch.AppendTo(&out);
    }
  } else {
    Row row;
    while (true) {
      auto more = plan->Next(&row);
      if (!more.ok()) {
        plan->Close();
        return more.status();
      }
      if (!more.value()) break;
      out.push_back(row);
    }
  }
  plan->Close();
  return out;
}

void FlushPlanMetrics(const PlanNode& plan) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (!reg.enabled()) return;
  std::string op = plan.OperatorName();
  const OperatorStats& s = plan.stats();
  reg.Add("op." + op + ".rows", s.rows);
  reg.Add("op." + op + ".next_calls", s.next_calls);
  if (s.batches > 0) {
    reg.Add("op." + op + ".batches", s.batches);
    reg.Add("exec.batches", s.batches);
  }
  if (plan.analyze_enabled()) {
    reg.Add("op." + op + ".time_ns", s.open_ns + s.next_ns);
    reg.RecordLatency("op." + op + ".time_us", (s.open_ns + s.next_ns) / 1000);
  }
  if (op == "SeqScan" || op == "IndexScan") {
    reg.Add("exec.rows_scanned", s.rows);
  }
  for (const PlanNode* c : plan.Children()) FlushPlanMetrics(*c);
}

// ---- SeqScan ----

SeqScanNode::SeqScanNode(const Table* table, std::string alias)
    : table_(table), alias_(std::move(alias)) {
  schema_ = table_->schema().WithQualifier(
      alias_.empty() ? table_->name() : alias_);
}

Status SeqScanNode::OpenImpl() {
  MetricsRegistry::Global().Add("table." + table_->name() + ".scans", 1);
  next_ = 0;
  view_ = EffectiveReadView();
  return Status::OK();
}

Result<bool> SeqScanNode::NextImpl(Row* out) {
  while (next_ < table_->num_slots()) {
    RowId rid = next_++;
    if (const Row* r = table_->VisibleRow(rid, view_)) {
      *out = *r;
      return true;
    }
  }
  return false;
}

Result<bool> SeqScanNode::NextBatchImpl(Batch* out) {
  const size_t ncols = schema_.size();
  out->Reset(ncols);
  const size_t target = static_cast<size_t>(DefaultBatchSize());
  const size_t slots = table_->num_slots();
  size_t produced = 0;
  while (next_ < slots && produced < target) {
    RowId rid = next_++;
    const Row* r = table_->VisibleRow(rid, view_);
    if (r == nullptr) continue;
    for (size_t c = 0; c < ncols; ++c) out->column(c).push_back((*r)[c]);
    ++produced;
  }
  out->SetNumRows(produced);
  return produced > 0;
}

std::string SeqScanNode::Describe() const {
  return "SeqScan(" + table_->name() +
         (alias_.empty() || alias_ == table_->name() ? "" : " AS " + alias_) + ")";
}

// ---- ParallelSeqScan ----

ParallelSeqScanNode::ParallelSeqScanNode(const Table* table, std::string alias,
                                         ExprPtr predicate, int max_workers,
                                         ThreadPool* pool)
    : table_(table), alias_(std::move(alias)), predicate_(std::move(predicate)),
      max_workers_(max_workers), pool_(pool) {
  schema_ = table_->schema().WithQualifier(
      alias_.empty() ? table_->name() : alias_);
}

Status ParallelSeqScanNode::OpenImpl() {
  MetricsRegistry::Global().Add("table." + table_->name() + ".scans", 1);
  rows_.clear();
  pos_ = 0;
  // Pool workers carry no thread-local read view, so capture the statement's
  // view here and read through the copy inside the morsel lambda.
  view_ = EffectiveReadView();
  size_t slots = table_->num_slots();
  if (slots == 0) return Status::OK();
  // More morsels than workers so an unlucky partition (all tombstones vs all
  // predicate matches) cannot serialize the scan behind one thread.
  size_t num_morsels =
      std::min(slots, static_cast<size_t>(std::max(max_workers_, 1)) * 4);
  size_t per = (slots + num_morsels - 1) / num_morsels;
  std::vector<std::vector<Row>> buffers(num_morsels);
  std::vector<Status> statuses(num_morsels, Status::OK());
  ThreadPool& pool = pool_ != nullptr ? *pool_ : ThreadPool::Shared();
  pool.ParallelFor(num_morsels, [&](size_t m) {
    // Nests under the statement span via the pool's context propagation.
    ScopedSpan morsel_span("scan.morsel", "exec");
    size_t begin = m * per;
    size_t end = std::min(slots, begin + per);
    ExprPtr pred;
    if (predicate_ != nullptr) {
      pred = predicate_->Clone();
      Status st = pred->Bind(schema_);
      if (!st.ok()) {
        statuses[m] = st;
        return;
      }
    }
    std::vector<Row>& out = buffers[m];
    for (RowId rid = begin; rid < end; ++rid) {
      const Row* vr = table_->VisibleRow(rid, view_);
      if (vr == nullptr) continue;
      const Row& r = *vr;
      if (pred != nullptr) {
        Result<bool> pass = pred->EvalBool(r);
        if (!pass.ok()) {
          statuses[m] = pass.status();
          return;
        }
        if (!pass.value()) continue;
      }
      out.push_back(r);
    }
  });
  for (const Status& st : statuses) RETURN_IF_ERROR(st);
  size_t total = 0;
  for (const auto& b : buffers) total += b.size();
  rows_.reserve(total);
  for (auto& b : buffers) {
    for (auto& r : b) rows_.push_back(std::move(r));
  }
  return Status::OK();
}

Result<bool> ParallelSeqScanNode::NextImpl(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = std::move(rows_[pos_++]);
  return true;
}

Result<bool> ParallelSeqScanNode::NextBatchImpl(Batch* out) {
  const size_t ncols = schema_.size();
  out->Reset(ncols);
  const size_t target = static_cast<size_t>(DefaultBatchSize());
  size_t produced = 0;
  while (pos_ < rows_.size() && produced < target) {
    Row& r = rows_[pos_++];
    for (size_t c = 0; c < ncols; ++c) {
      out->column(c).push_back(std::move(r[c]));
    }
    ++produced;
  }
  out->SetNumRows(produced);
  return produced > 0;
}

void ParallelSeqScanNode::CloseImpl() {
  rows_.clear();
  pos_ = 0;
}

std::string ParallelSeqScanNode::Describe() const {
  std::string out = "ParallelSeqScan(" + table_->name();
  if (!alias_.empty() && alias_ != table_->name()) out += " AS " + alias_;
  out += ", workers=" + std::to_string(max_workers_);
  if (predicate_ != nullptr) out += ", filter=" + predicate_->ToString();
  return out + ")";
}

// ---- IndexScan ----

IndexScanNode::IndexScanNode(const Table* table, const Index* index,
                             std::string alias, Row lower, bool lower_inclusive,
                             Row upper, bool upper_inclusive)
    : table_(table), index_(index), alias_(std::move(alias)),
      lower_(std::move(lower)), upper_(std::move(upper)),
      lower_inclusive_(lower_inclusive), upper_inclusive_(upper_inclusive) {
  schema_ = table_->schema().WithQualifier(
      alias_.empty() ? table_->name() : alias_);
}

IndexScanNode::IndexScanNode(const Table* table, const Index* index,
                             std::string alias, std::vector<ExprPtr> lower,
                             bool lower_inclusive, std::vector<ExprPtr> upper,
                             bool upper_inclusive)
    : table_(table), index_(index), alias_(std::move(alias)),
      lower_exprs_(std::move(lower)), upper_exprs_(std::move(upper)),
      lower_inclusive_(lower_inclusive), upper_inclusive_(upper_inclusive) {
  schema_ = table_->schema().WithQualifier(
      alias_.empty() ? table_->name() : alias_);
}

namespace {

/// True when `v` can serve as an index bound for a key column of type `ct`:
/// same type, or numeric-vs-numeric (Value::Compare orders those by value).
/// Anything else (NULL, string-vs-int, ...) would compare by type id, which
/// does not match predicate semantics — the caller truncates the bound.
bool UsableBound(const Value& v, DataType ct) {
  if (v.is_null()) return false;
  auto numeric = [](DataType t) {
    return t == DataType::kInt || t == DataType::kDouble;
  };
  if (numeric(ct) && numeric(v.type())) return true;
  return v.type() == ct;
}

}  // namespace

Status IndexScanNode::OpenImpl() {
  MetricsRegistry::Global().Add("table." + table_->name() + ".scans", 1);
  if (!lower_exprs_.empty() || !upper_exprs_.empty()) {
    // Parameterized bounds: resolve per execution, truncating the prefix at
    // the first value the key column cannot be range-compared against.
    static const Row kEmpty;
    lower_.clear();
    upper_.clear();
    const auto& keys = index_->key_columns();
    for (size_t i = 0; i < lower_exprs_.size() && i < keys.size(); ++i) {
      ASSIGN_OR_RETURN(Value v, lower_exprs_[i]->Eval(kEmpty));
      if (!UsableBound(v, table_->schema().column(keys[i]).type)) break;
      lower_.push_back(std::move(v));
    }
    for (size_t i = 0; i < upper_exprs_.size() && i < keys.size(); ++i) {
      ASSIGN_OR_RETURN(Value v, upper_exprs_[i]->Eval(kEmpty));
      if (!UsableBound(v, table_->schema().column(keys[i]).type)) break;
      upper_.push_back(std::move(v));
    }
  }
  view_ = EffectiveReadView();
  snapshot_scan_ = !view_.read_latest && table_->mvcc_enabled();
  if (snapshot_scan_) {
    // Raw entries, re-verified per row in Next: indexes are maintained
    // lazily under MVCC, so an entry may point at a row whose visible
    // version no longer (or does not yet) carry the entry's key.
    entries_ = table_->IndexEntriesInRange(index_, lower_, lower_inclusive_,
                                           upper_, upper_inclusive_);
  } else {
    rids_ =
        index_->LookupRange(lower_, lower_inclusive_, upper_, upper_inclusive_);
  }
  pos_ = 0;
  return Status::OK();
}

/// Snapshot path: resolves the entry at `pos` to the row version visible to
/// `view`, or nullptr when the entry is invisible to this scan. The visible
/// version's key columns must equal the entry key — that rejects entries
/// from other versions of the row and dedups rows reachable through both an
/// old and a new key (each row is emitted only for its visible key).
const Row* IndexScanNode::VisibleEntryRow(const Row& entry) const {
  const RowId rid = static_cast<RowId>(entry.back().AsInt());
  const Row* r = table_->VisibleRow(rid, view_);
  if (r == nullptr) return nullptr;
  const auto& keys = index_->key_columns();
  for (size_t i = 0; i < keys.size(); ++i) {
    if ((*r)[keys[i]].Compare(entry[i]) != 0) return nullptr;
  }
  return r;
}

Result<bool> IndexScanNode::NextImpl(Row* out) {
  if (snapshot_scan_) {
    while (pos_ < entries_.size()) {
      const Row* r = VisibleEntryRow(entries_[pos_++]);
      if (r != nullptr) {
        *out = *r;
        return true;
      }
    }
    return false;
  }
  while (pos_ < rids_.size()) {
    RowId rid = rids_[pos_++];
    if (table_->IsLive(rid)) {
      *out = table_->row(rid);
      return true;
    }
  }
  return false;
}

Result<bool> IndexScanNode::NextBatchImpl(Batch* out) {
  const size_t ncols = schema_.size();
  out->Reset(ncols);
  const size_t target = static_cast<size_t>(DefaultBatchSize());
  size_t produced = 0;
  if (snapshot_scan_) {
    while (pos_ < entries_.size() && produced < target) {
      const Row* r = VisibleEntryRow(entries_[pos_++]);
      if (r == nullptr) continue;
      for (size_t c = 0; c < ncols; ++c) out->column(c).push_back((*r)[c]);
      ++produced;
    }
    out->SetNumRows(produced);
    return produced > 0;
  }
  while (pos_ < rids_.size() && produced < target) {
    RowId rid = rids_[pos_++];
    if (!table_->IsLive(rid)) continue;
    const Row& r = table_->row(rid);
    for (size_t c = 0; c < ncols; ++c) out->column(c).push_back(r[c]);
    ++produced;
  }
  out->SetNumRows(produced);
  return produced > 0;
}

void IndexScanNode::CloseImpl() {
  rids_.clear();
  entries_.clear();
}

std::string IndexScanNode::Describe() const {
  std::string out = "IndexScan(" + table_->name() + "." + index_->name();
  auto exprs_to_string = [](const std::vector<ExprPtr>& exprs) {
    std::string s = "[";
    for (size_t i = 0; i < exprs.size(); ++i) {
      if (i > 0) s += ", ";
      s += exprs[i]->ToString();
    }
    return s + "]";
  };
  if (!lower_exprs_.empty() || !upper_exprs_.empty()) {
    if (!lower_exprs_.empty()) {
      out += lower_inclusive_ ? " >= " : " > ";
      out += exprs_to_string(lower_exprs_);
    }
    if (!upper_exprs_.empty()) {
      out += upper_inclusive_ ? " <= " : " < ";
      out += exprs_to_string(upper_exprs_);
    }
    return out + ")";
  }
  if (!lower_.empty()) {
    out += lower_inclusive_ ? " >= " : " > ";
    out += RowToString(lower_);
  }
  if (!upper_.empty()) {
    out += upper_inclusive_ ? " <= " : " < ";
    out += RowToString(upper_);
  }
  return out + ")";
}

// ---- Filter ----

FilterNode::FilterNode(PlanPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterNode::OpenImpl() {
  RETURN_IF_ERROR(predicate_->Bind(child_->output_schema()));
  return child_->Open();
}

Result<bool> FilterNode::NextImpl(Row* out) {
  while (true) {
    ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    ASSIGN_OR_RETURN(bool pass, predicate_->EvalBool(*out));
    if (pass) return true;
  }
}

Result<bool> FilterNode::NextBatchImpl(Batch* out) {
  while (true) {
    ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
    if (!more) return false;
    std::vector<uint32_t> sel;
    RETURN_IF_ERROR(predicate_->FilterBatch(*out, out->ActiveRids(), &sel));
    if (sel.empty()) continue;  // fully filtered; pull the next batch
    out->SetSelection(std::move(sel));
    return true;
  }
}

std::string FilterNode::Describe() const {
  return "Filter(" + predicate_->ToString() + ")";
}

// ---- Project ----

ProjectNode::ProjectNode(PlanPtr child, std::vector<ExprPtr> exprs,
                         std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  const Schema& in = child_->output_schema();
  for (size_t i = 0; i < exprs_.size(); ++i) {
    Column c;
    c.name = i < names.size() && !names[i].empty() ? names[i]
                                                   : exprs_[i]->ToString();
    // Plain column projections keep their qualifier (split back into the
    // schema's qualifier/name fields) so "alias.col" still binds downstream.
    if (exprs_[i]->kind() == Expr::Kind::kColumn &&
        (i >= names.size() || names[i].empty())) {
      const auto& col = static_cast<const ColumnExpr&>(*exprs_[i]);
      size_t dot = col.name().find('.');
      if (dot != std::string::npos) {
        c.qualifier = col.name().substr(0, dot);
        c.name = col.name().substr(dot + 1);
      } else {
        c.name = col.name();
      }
    }
    c.type = InferType(*exprs_[i], in);
    schema_.AddColumn(std::move(c));
  }
}

Status ProjectNode::OpenImpl() {
  for (auto& e : exprs_) RETURN_IF_ERROR(e->Bind(child_->output_schema()));
  return child_->Open();
}

Result<bool> ProjectNode::NextImpl(Row* out) {
  Row in;
  ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (auto& e : exprs_) {
    ASSIGN_OR_RETURN(Value v, e->Eval(in));
    out->push_back(std::move(v));
  }
  return true;
}

Result<bool> ProjectNode::NextBatchImpl(Batch* out) {
  ASSIGN_OR_RETURN(bool more, child_->NextBatch(&input_));
  if (!more) return false;
  const std::vector<uint32_t>& rids = input_.ActiveRids();
  out->Reset(exprs_.size());
  for (size_t c = 0; c < exprs_.size(); ++c) {
    RETURN_IF_ERROR(exprs_[c]->EvalBatch(input_, rids, &out->column(c)));
  }
  out->SetNumRows(rids.size());
  return true;
}

std::string ProjectNode::Describe() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  return out + ")";
}

// ---- NestedLoopJoin ----

NestedLoopJoinNode::NestedLoopJoinNode(PlanPtr left, PlanPtr right,
                                       ExprPtr predicate)
    : left_(std::move(left)), right_(std::move(right)),
      predicate_(std::move(predicate)) {
  schema_ = Schema::Concat(left_->output_schema(), right_->output_schema());
}

Status NestedLoopJoinNode::OpenImpl() {
  if (predicate_ != nullptr) RETURN_IF_ERROR(predicate_->Bind(schema_));
  RETURN_IF_ERROR(left_->Open());
  RETURN_IF_ERROR(right_->Open());
  right_rows_.clear();
  Row r;
  while (true) {
    ASSIGN_OR_RETURN(bool more, right_->Next(&r));
    if (!more) break;
    right_rows_.push_back(r);
  }
  right_->Close();
  left_valid_ = false;
  right_pos_ = 0;
  return Status::OK();
}

Result<bool> NestedLoopJoinNode::NextImpl(Row* out) {
  while (true) {
    if (!left_valid_) {
      ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
      if (!more) return false;
      left_valid_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& r = right_rows_[right_pos_++];
      out->clear();
      out->reserve(left_row_.size() + r.size());
      out->insert(out->end(), left_row_.begin(), left_row_.end());
      out->insert(out->end(), r.begin(), r.end());
      if (predicate_ == nullptr) return true;
      ASSIGN_OR_RETURN(bool pass, predicate_->EvalBool(*out));
      if (pass) return true;
    }
    left_valid_ = false;
  }
}

void NestedLoopJoinNode::CloseImpl() {
  left_->Close();
  right_rows_.clear();
}

std::string NestedLoopJoinNode::Describe() const {
  return "NestedLoopJoin(" +
         (predicate_ ? predicate_->ToString() : std::string("true")) + ")";
}

// ---- HashJoin ----

HashJoinNode::HashJoinNode(PlanPtr left, PlanPtr right,
                           std::vector<ExprPtr> left_keys,
                           std::vector<ExprPtr> right_keys, ExprPtr residual)
    : left_(std::move(left)), right_(std::move(right)),
      left_keys_(std::move(left_keys)), right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {
  schema_ = Schema::Concat(left_->output_schema(), right_->output_schema());
}

Status HashJoinNode::OpenImpl() {
  for (auto& k : left_keys_) RETURN_IF_ERROR(k->Bind(left_->output_schema()));
  for (auto& k : right_keys_) RETURN_IF_ERROR(k->Bind(right_->output_schema()));
  if (residual_ != nullptr) RETURN_IF_ERROR(residual_->Bind(schema_));
  RETURN_IF_ERROR(right_->Open());
  build_.clear();
  // SQL equality never matches NULL, so NULL-keyed rows can never join:
  // keep them out of the build table entirely.
  if (DefaultExecMode() == ExecMode::kBatch) {
    Batch b;
    std::vector<std::vector<Value>> keycols(right_keys_.size());
    while (true) {
      ASSIGN_OR_RETURN(bool more, right_->NextBatch(&b));
      if (!more) break;
      const std::vector<uint32_t>& rids = b.ActiveRids();
      for (size_t k = 0; k < right_keys_.size(); ++k) {
        RETURN_IF_ERROR(right_keys_[k]->EvalBatch(b, rids, &keycols[k]));
      }
      for (size_t i = 0; i < rids.size(); ++i) {
        Row key;
        key.reserve(right_keys_.size());
        bool has_null = false;
        for (size_t k = 0; k < right_keys_.size(); ++k) {
          has_null = has_null || keycols[k][i].is_null();
          key.push_back(std::move(keycols[k][i]));
        }
        if (has_null) continue;
        size_t h = HashRow(key);
        build_.emplace(h, BuildEntry{std::move(key), b.MaterializeRow(rids[i])});
      }
    }
  } else {
    Row r;
    while (true) {
      ASSIGN_OR_RETURN(bool more, right_->Next(&r));
      if (!more) break;
      Row key;
      key.reserve(right_keys_.size());
      bool has_null = false;
      for (auto& k : right_keys_) {
        ASSIGN_OR_RETURN(Value v, k->Eval(r));
        has_null = has_null || v.is_null();
        key.push_back(std::move(v));
      }
      if (has_null) continue;
      size_t h = HashRow(key);
      build_.emplace(h, BuildEntry{std::move(key), r});
    }
  }
  right_->Close();
  RETURN_IF_ERROR(left_->Open());
  matches_.clear();
  match_pos_ = 0;
  return Status::OK();
}

Result<bool> HashJoinNode::NextImpl(Row* out) {
  while (true) {
    while (match_pos_ < matches_.size()) {
      const Row& r = *matches_[match_pos_++];
      out->clear();
      out->reserve(probe_row_.size() + r.size());
      out->insert(out->end(), probe_row_.begin(), probe_row_.end());
      out->insert(out->end(), r.begin(), r.end());
      if (residual_ == nullptr) return true;
      ASSIGN_OR_RETURN(bool pass, residual_->EvalBool(*out));
      if (pass) return true;
    }
    ASSIGN_OR_RETURN(bool more, left_->Next(&probe_row_));
    if (!more) return false;
    Row key;
    key.reserve(left_keys_.size());
    bool has_null = false;
    for (auto& k : left_keys_) {
      ASSIGN_OR_RETURN(Value v, k->Eval(probe_row_));
      has_null = has_null || v.is_null();
      key.push_back(std::move(v));
    }
    matches_.clear();
    match_pos_ = 0;
    if (has_null) continue;  // NULL keys never join
    auto [lo, hi] = build_.equal_range(HashRow(key));
    for (auto it = lo; it != hi; ++it) {
      // Verify actual key equality (hash collisions). Build keys are
      // NULL-free, so CompareRows == 0 means true SQL equality.
      if (CompareRows(it->second.key, key) == 0) {
        matches_.push_back(&it->second.row);
      }
    }
  }
}

Result<bool> HashJoinNode::NextBatchImpl(Batch* out) {
  const size_t lcols = left_->output_schema().size();
  while (true) {
    ASSIGN_OR_RETURN(bool more, left_->NextBatch(&probe_batch_));
    if (!more) return false;
    const std::vector<uint32_t>& rids = probe_batch_.ActiveRids();
    // Batched hash-key computation over the whole probe input, then a tight
    // per-row probe loop emitting concatenated rows column-wise.
    std::vector<std::vector<Value>> keycols(left_keys_.size());
    for (size_t k = 0; k < left_keys_.size(); ++k) {
      RETURN_IF_ERROR(left_keys_[k]->EvalBatch(probe_batch_, rids, &keycols[k]));
    }
    out->Reset(schema_.size());
    size_t produced = 0;
    Row key;
    for (size_t i = 0; i < rids.size(); ++i) {
      key.clear();
      bool has_null = false;
      for (size_t k = 0; k < left_keys_.size(); ++k) {
        has_null = has_null || keycols[k][i].is_null();
        key.push_back(std::move(keycols[k][i]));
      }
      if (has_null) continue;  // NULL keys never join
      auto [lo, hi] = build_.equal_range(HashRow(key));
      for (auto it = lo; it != hi; ++it) {
        if (CompareRows(it->second.key, key) != 0) continue;
        for (size_t c = 0; c < lcols; ++c) {
          out->column(c).push_back(probe_batch_.At(c, rids[i]));
        }
        const Row& r = it->second.row;
        for (size_t c = 0; c < r.size(); ++c) {
          out->column(lcols + c).push_back(r[c]);
        }
        ++produced;
      }
    }
    out->SetNumRows(produced);
    if (produced == 0) continue;
    if (residual_ != nullptr) {
      std::vector<uint32_t> sel;
      RETURN_IF_ERROR(residual_->FilterBatch(*out, out->ActiveRids(), &sel));
      if (sel.empty()) continue;
      out->SetSelection(std::move(sel));
    }
    return true;
  }
}

void HashJoinNode::CloseImpl() {
  left_->Close();
  build_.clear();
  matches_.clear();
}

std::string HashJoinNode::Describe() const {
  std::string out = "HashJoin(";
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += left_keys_[i]->ToString() + " = " + right_keys_[i]->ToString();
  }
  if (residual_ != nullptr) out += " AND " + residual_->ToString();
  return out + ")";
}

// ---- Sort ----

SortNode::SortNode(PlanPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

Status SortNode::OpenImpl() {
  for (auto& k : keys_) RETURN_IF_ERROR(k.expr->Bind(child_->output_schema()));
  RETURN_IF_ERROR(child_->Open());
  rows_.clear();
  if (DefaultExecMode() == ExecMode::kBatch) {
    Batch b;
    while (true) {
      ASSIGN_OR_RETURN(bool more, child_->NextBatch(&b));
      if (!more) break;
      b.AppendTo(&rows_);
    }
  } else {
    Row r;
    while (true) {
      ASSIGN_OR_RETURN(bool more, child_->Next(&r));
      if (!more) break;
      rows_.push_back(r);
    }
  }
  child_->Close();
  // Precompute sort keys per row to avoid re-evaluating in the comparator
  // (and to keep the comparator exception/Status free).
  std::vector<std::pair<Row, size_t>> keyed;
  keyed.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    Row key;
    key.reserve(keys_.size());
    for (auto& k : keys_) {
      ASSIGN_OR_RETURN(Value v, k.expr->Eval(rows_[i]));
      key.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(key), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [this](const auto& a, const auto& b) {
                     for (size_t i = 0; i < keys_.size(); ++i) {
                       int c = a.first[i].Compare(b.first[i]);
                       if (c != 0) return keys_[i].ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (const auto& [key, idx] : keyed) sorted.push_back(std::move(rows_[idx]));
  rows_ = std::move(sorted);
  pos_ = 0;
  return Status::OK();
}

Result<bool> SortNode::NextImpl(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

void SortNode::CloseImpl() { rows_.clear(); }

std::string SortNode::Describe() const {
  std::string out = "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    out += keys_[i].ascending ? " ASC" : " DESC";
  }
  return out + ")";
}

// ---- Aggregate ----

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kCountStar: return "COUNT(*)";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

AggregateNode::AggregateNode(PlanPtr child, std::vector<ExprPtr> group_by,
                             std::vector<std::string> group_names,
                             std::vector<AggSpec> aggs)
    : child_(std::move(child)), group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  const Schema& in = child_->output_schema();
  for (size_t i = 0; i < group_by_.size(); ++i) {
    Column c;
    c.name = i < group_names.size() && !group_names[i].empty()
                 ? group_names[i]
                 : group_by_[i]->ToString();
    c.type = InferType(*group_by_[i], in);
    schema_.AddColumn(std::move(c));
  }
  for (const auto& a : aggs_) {
    Column c;
    c.name = !a.output_name.empty()
                 ? a.output_name
                 : std::string(AggFuncName(a.func)) +
                       (a.arg ? "(" + a.arg->ToString() + ")" : "");
    switch (a.func) {
      case AggFunc::kCount:
      case AggFunc::kCountStar:
        c.type = DataType::kInt;
        break;
      case AggFunc::kAvg:
        c.type = DataType::kDouble;
        break;
      default:
        c.type = a.arg ? InferType(*a.arg, in) : DataType::kDouble;
    }
    schema_.AddColumn(std::move(c));
  }
}

namespace {
struct AggState {
  Row group;
  std::vector<int64_t> counts;
  // SUM/AVG accumulate exactly in int64 while every input is an int64 and
  // the running sum fits; `all_int` flips false (demoting isums into sums)
  // on the first non-integer input or on int64 overflow.
  std::vector<int64_t> isums;
  std::vector<double> sums;
  std::vector<Value> mins;
  std::vector<Value> maxs;
  std::vector<bool> all_int;

  explicit AggState(size_t n) {
    counts.assign(n, 0);
    isums.assign(n, 0);
    sums.assign(n, 0.0);
    mins.assign(n, Value::Null());
    maxs.assign(n, Value::Null());
    all_int.assign(n, true);
  }
};
}  // namespace

Status AggregateNode::OpenImpl() {
  for (auto& g : group_by_) RETURN_IF_ERROR(g->Bind(child_->output_schema()));
  for (auto& a : aggs_) {
    if (a.arg) RETURN_IF_ERROR(a.arg->Bind(child_->output_schema()));
  }
  RETURN_IF_ERROR(child_->Open());

  std::unordered_map<size_t, std::vector<AggState>> groups;
  bool any_input = false;

  auto find_state = [&](Row gkey) -> AggState* {
    size_t h = HashRow(gkey);
    for (auto& cand : groups[h]) {
      if (CompareRows(cand.group, gkey) == 0) return &cand;
    }
    AggState fresh(aggs_.size());
    fresh.group = std::move(gkey);
    groups[h].push_back(std::move(fresh));
    return &groups[h].back();
  };

  // Folds one input row into `state`; args[i] is aggs_[i]'s evaluated
  // argument (ignored for COUNT(*), consumed by move).
  auto accumulate = [&](AggState* state, std::vector<Value>& args) -> Status {
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggSpec& a = aggs_[i];
      if (a.func == AggFunc::kCountStar) {
        state->counts[i] += 1;
        continue;
      }
      Value& v = args[i];
      if (v.is_null()) continue;
      state->counts[i] += 1;
      switch (a.func) {
        case AggFunc::kSum:
        case AggFunc::kAvg: {
          int64_t next_isum = 0;
          if (state->all_int[i] && v.type() == DataType::kInt &&
              !__builtin_add_overflow(state->isums[i], v.AsInt(), &next_isum)) {
            state->isums[i] = next_isum;
            break;
          }
          if (state->all_int[i]) {
            // Demote the exact integer sum accumulated so far.
            state->all_int[i] = false;
            state->sums[i] = static_cast<double>(state->isums[i]);
          }
          ASSIGN_OR_RETURN(Value num, v.CastTo(DataType::kDouble));
          state->sums[i] += num.AsDouble();
          break;
        }
        case AggFunc::kMin:
          if (state->mins[i].is_null() || v.Compare(state->mins[i]) < 0) {
            state->mins[i] = std::move(v);
          }
          break;
        case AggFunc::kMax:
          if (state->maxs[i].is_null() || v.Compare(state->maxs[i]) > 0) {
            state->maxs[i] = std::move(v);
          }
          break;
        default:
          break;
      }
    }
    return Status::OK();
  };

  if (DefaultExecMode() == ExecMode::kBatch) {
    Batch b;
    std::vector<std::vector<Value>> gcols(group_by_.size());
    std::vector<std::vector<Value>> acols(aggs_.size());
    std::vector<Value> args(aggs_.size());
    while (true) {
      ASSIGN_OR_RETURN(bool more, child_->NextBatch(&b));
      if (!more) break;
      any_input = true;
      const std::vector<uint32_t>& rids = b.ActiveRids();
      for (size_t g = 0; g < group_by_.size(); ++g) {
        RETURN_IF_ERROR(group_by_[g]->EvalBatch(b, rids, &gcols[g]));
      }
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (aggs_[i].arg != nullptr) {
          RETURN_IF_ERROR(aggs_[i].arg->EvalBatch(b, rids, &acols[i]));
        }
      }
      for (size_t row = 0; row < rids.size(); ++row) {
        Row gkey;
        gkey.reserve(group_by_.size());
        for (size_t g = 0; g < group_by_.size(); ++g) {
          gkey.push_back(std::move(gcols[g][row]));
        }
        for (size_t i = 0; i < aggs_.size(); ++i) {
          args[i] = aggs_[i].arg != nullptr ? std::move(acols[i][row])
                                            : Value::Null();
        }
        RETURN_IF_ERROR(accumulate(find_state(std::move(gkey)), args));
      }
    }
  } else {
    Row r;
    std::vector<Value> args(aggs_.size());
    while (true) {
      ASSIGN_OR_RETURN(bool more, child_->Next(&r));
      if (!more) break;
      any_input = true;
      Row gkey;
      gkey.reserve(group_by_.size());
      for (auto& g : group_by_) {
        ASSIGN_OR_RETURN(Value v, g->Eval(r));
        gkey.push_back(std::move(v));
      }
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (aggs_[i].arg != nullptr) {
          ASSIGN_OR_RETURN(args[i], aggs_[i].arg->Eval(r));
        } else {
          args[i] = Value::Null();
        }
      }
      RETURN_IF_ERROR(accumulate(find_state(std::move(gkey)), args));
    }
  }
  child_->Close();

  // Emit groups; to keep deterministic output, order by group key.
  results_.clear();
  std::vector<const AggState*> states;
  for (auto& [h, bucket] : groups) {
    for (auto& s : bucket) states.push_back(&s);
  }
  std::sort(states.begin(), states.end(), [](const AggState* a, const AggState* b) {
    return CompareRows(a->group, b->group) < 0;
  });
  auto emit = [&](const AggState& s) {
    Row out = s.group;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      switch (aggs_[i].func) {
        case AggFunc::kCount:
        case AggFunc::kCountStar:
          out.push_back(Value(s.counts[i]));
          break;
        case AggFunc::kSum:
          if (s.counts[i] == 0) out.push_back(Value::Null());
          else if (s.all_int[i]) out.push_back(Value(s.isums[i]));
          else out.push_back(Value(s.sums[i]));
          break;
        case AggFunc::kAvg:
          if (s.counts[i] == 0) {
            out.push_back(Value::Null());
          } else {
            double total = s.all_int[i] ? static_cast<double>(s.isums[i])
                                        : s.sums[i];
            out.push_back(Value(total / static_cast<double>(s.counts[i])));
          }
          break;
        case AggFunc::kMin:
          out.push_back(s.mins[i]);
          break;
        case AggFunc::kMax:
          out.push_back(s.maxs[i]);
          break;
      }
    }
    results_.push_back(std::move(out));
  };
  for (const AggState* s : states) emit(*s);
  // Global aggregate over empty input still yields one row.
  if (group_by_.empty() && !any_input) {
    emit(AggState(aggs_.size()));
  }
  pos_ = 0;
  return Status::OK();
}

Result<bool> AggregateNode::NextImpl(Row* out) {
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  return true;
}

void AggregateNode::CloseImpl() { results_.clear(); }

std::string AggregateNode::Describe() const {
  std::string out = "Aggregate(";
  for (size_t i = 0; i < group_by_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_by_[i]->ToString();
  }
  if (!group_by_.empty() && !aggs_.empty()) out += "; ";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggFuncName(aggs_[i].func);
    if (aggs_[i].arg) out += "(" + aggs_[i].arg->ToString() + ")";
  }
  return out + ")";
}

// ---- Distinct ----

DistinctNode::DistinctNode(PlanPtr child) : child_(std::move(child)) {}

Status DistinctNode::OpenImpl() {
  seen_rows_.clear();
  return child_->Open();
}

Result<bool> DistinctNode::NextImpl(Row* out) {
  while (true) {
    ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    size_t h = HashRow(*out);
    auto [lo, hi] = seen_rows_.equal_range(h);
    bool dup = false;
    for (auto it = lo; it != hi; ++it) {
      if (CompareRows(it->second, *out) == 0) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      seen_rows_.emplace(h, *out);
      return true;
    }
  }
}

Result<bool> DistinctNode::NextBatchImpl(Batch* out) {
  while (true) {
    ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
    if (!more) return false;
    std::vector<uint32_t> sel;
    for (uint32_t rid : out->ActiveRids()) {
      Row row = out->MaterializeRow(rid);
      size_t h = HashRow(row);
      auto [lo, hi] = seen_rows_.equal_range(h);
      bool dup = false;
      for (auto it = lo; it != hi; ++it) {
        if (CompareRows(it->second, row) == 0) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        seen_rows_.emplace(h, std::move(row));
        sel.push_back(rid);
      }
    }
    if (sel.empty()) continue;  // all duplicates; pull the next batch
    out->SetSelection(std::move(sel));
    return true;
  }
}

void DistinctNode::CloseImpl() {
  child_->Close();
  seen_rows_.clear();
}

// ---- Limit ----

LimitNode::LimitNode(PlanPtr child, int64_t limit, int64_t offset)
    : child_(std::move(child)), limit_(limit), offset_(offset) {}

Status LimitNode::OpenImpl() {
  emitted_ = 0;
  skipped_ = 0;
  return child_->Open();
}

Result<bool> LimitNode::NextImpl(Row* out) {
  while (skipped_ < offset_) {
    ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    ++skipped_;
  }
  if (limit_ >= 0 && emitted_ >= limit_) return false;
  ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  ++emitted_;
  return true;
}

Result<bool> LimitNode::NextBatchImpl(Batch* out) {
  while (true) {
    if (limit_ >= 0 && emitted_ >= limit_) return false;
    ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
    if (!more) return false;
    const std::vector<uint32_t>& rids = out->ActiveRids();
    size_t begin = 0;
    if (skipped_ < offset_) {
      begin = std::min(rids.size(), static_cast<size_t>(offset_ - skipped_));
      skipped_ += static_cast<int64_t>(begin);
    }
    size_t avail = rids.size() - begin;
    if (avail == 0) continue;  // batch consumed entirely by OFFSET
    size_t take = avail;
    if (limit_ >= 0) {
      take = std::min(avail, static_cast<size_t>(limit_ - emitted_));
    }
    emitted_ += static_cast<int64_t>(take);
    if (begin == 0 && take == rids.size()) return true;  // whole batch passes
    std::vector<uint32_t> sel(rids.begin() + static_cast<ptrdiff_t>(begin),
                              rids.begin() + static_cast<ptrdiff_t>(begin + take));
    out->SetSelection(std::move(sel));
    return true;
  }
}

std::string LimitNode::Describe() const {
  std::string out = "Limit(" + std::to_string(limit_);
  if (offset_ > 0) out += " OFFSET " + std::to_string(offset_);
  return out + ")";
}

// ---- Values ----

ValuesNode::ValuesNode(Schema schema, std::vector<Row> rows)
    : schema_(std::move(schema)), rows_(std::move(rows)) {}

Status ValuesNode::OpenImpl() {
  pos_ = 0;
  return Status::OK();
}

Result<bool> ValuesNode::NextImpl(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

Result<bool> ValuesNode::NextBatchImpl(Batch* out) {
  out->Reset(schema_.size());
  const size_t target = static_cast<size_t>(DefaultBatchSize());
  while (pos_ < rows_.size() && out->num_rows() < target) {
    out->AppendRow(rows_[pos_++]);
  }
  return out->num_rows() > 0;
}

std::string ValuesNode::Describe() const {
  return "Values(" + std::to_string(rows_.size()) + " rows)";
}

}  // namespace xmlrdb::rdb
