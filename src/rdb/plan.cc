#include "rdb/plan.h"

#include <algorithm>

namespace xmlrdb::rdb {

namespace {

/// Best-effort static type of an expression over `schema`.
DataType InferType(const Expr& e, const Schema& schema) {
  switch (e.kind()) {
    case Expr::Kind::kColumn: {
      const auto& col = static_cast<const ColumnExpr&>(e);
      auto idx = schema.TryIndexOf(col.name());
      return idx.has_value() ? schema.column(*idx).type : DataType::kString;
    }
    case Expr::Kind::kLiteral:
      return static_cast<const LiteralExpr&>(e).value().type();
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      switch (bin.op()) {
        case BinOp::kAnd: case BinOp::kOr:
        case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
        case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
          return DataType::kBool;
        default: {
          DataType l = InferType(*bin.left(), schema);
          DataType r = InferType(*bin.right(), schema);
          if (l == DataType::kString || r == DataType::kString) {
            return DataType::kString;
          }
          if (l == DataType::kDouble || r == DataType::kDouble) {
            return DataType::kDouble;
          }
          return DataType::kInt;
        }
      }
    }
    case Expr::Kind::kNot:
    case Expr::Kind::kIsNull:
    case Expr::Kind::kLike:
    case Expr::Kind::kInList:
      return DataType::kBool;
    case Expr::Kind::kAgg:
      return DataType::kDouble;  // resolved by AggregateNode before execution
  }
  return DataType::kString;
}

void ExplainRec(const PlanNode& n, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(n.Describe());
  out->append("\n");
  for (const PlanNode* c : n.Children()) ExplainRec(*c, depth + 1, out);
}

}  // namespace

std::string PlanNode::Explain() const {
  std::string out;
  ExplainRec(*this, 0, &out);
  return out;
}

int PlanNode::CountOperators(const std::string& prefix) const {
  int n = Describe().rfind(prefix, 0) == 0 ? 1 : 0;
  for (const PlanNode* c : Children()) n += c->CountOperators(prefix);
  return n;
}

Result<std::vector<Row>> ExecutePlan(PlanNode* plan) {
  RETURN_IF_ERROR(plan->Open());
  std::vector<Row> out;
  Row row;
  while (true) {
    auto more = plan->Next(&row);
    if (!more.ok()) {
      plan->Close();
      return more.status();
    }
    if (!more.value()) break;
    out.push_back(row);
  }
  plan->Close();
  return out;
}

// ---- SeqScan ----

SeqScanNode::SeqScanNode(const Table* table, std::string alias)
    : table_(table), alias_(std::move(alias)) {
  schema_ = table_->schema().WithQualifier(
      alias_.empty() ? table_->name() : alias_);
}

Status SeqScanNode::Open() {
  next_ = 0;
  return Status::OK();
}

Result<bool> SeqScanNode::Next(Row* out) {
  while (next_ < table_->num_slots()) {
    RowId rid = next_++;
    if (table_->IsLive(rid)) {
      *out = table_->row(rid);
      return true;
    }
  }
  return false;
}

std::string SeqScanNode::Describe() const {
  return "SeqScan(" + table_->name() +
         (alias_.empty() || alias_ == table_->name() ? "" : " AS " + alias_) + ")";
}

// ---- IndexScan ----

IndexScanNode::IndexScanNode(const Table* table, const Index* index,
                             std::string alias, Row lower, bool lower_inclusive,
                             Row upper, bool upper_inclusive)
    : table_(table), index_(index), alias_(std::move(alias)),
      lower_(std::move(lower)), upper_(std::move(upper)),
      lower_inclusive_(lower_inclusive), upper_inclusive_(upper_inclusive) {
  schema_ = table_->schema().WithQualifier(
      alias_.empty() ? table_->name() : alias_);
}

Status IndexScanNode::Open() {
  rids_ = index_->LookupRange(lower_, lower_inclusive_, upper_, upper_inclusive_);
  pos_ = 0;
  return Status::OK();
}

Result<bool> IndexScanNode::Next(Row* out) {
  while (pos_ < rids_.size()) {
    RowId rid = rids_[pos_++];
    if (table_->IsLive(rid)) {
      *out = table_->row(rid);
      return true;
    }
  }
  return false;
}

void IndexScanNode::Close() { rids_.clear(); }

std::string IndexScanNode::Describe() const {
  std::string out = "IndexScan(" + table_->name() + "." + index_->name();
  if (!lower_.empty()) {
    out += lower_inclusive_ ? " >= " : " > ";
    out += RowToString(lower_);
  }
  if (!upper_.empty()) {
    out += upper_inclusive_ ? " <= " : " < ";
    out += RowToString(upper_);
  }
  return out + ")";
}

// ---- Filter ----

FilterNode::FilterNode(PlanPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterNode::Open() {
  RETURN_IF_ERROR(predicate_->Bind(child_->output_schema()));
  return child_->Open();
}

Result<bool> FilterNode::Next(Row* out) {
  while (true) {
    ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    ASSIGN_OR_RETURN(bool pass, predicate_->EvalBool(*out));
    if (pass) return true;
  }
}

std::string FilterNode::Describe() const {
  return "Filter(" + predicate_->ToString() + ")";
}

// ---- Project ----

ProjectNode::ProjectNode(PlanPtr child, std::vector<ExprPtr> exprs,
                         std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  const Schema& in = child_->output_schema();
  for (size_t i = 0; i < exprs_.size(); ++i) {
    Column c;
    c.name = i < names.size() && !names[i].empty() ? names[i]
                                                   : exprs_[i]->ToString();
    // Plain column projections keep their qualifier (split back into the
    // schema's qualifier/name fields) so "alias.col" still binds downstream.
    if (exprs_[i]->kind() == Expr::Kind::kColumn &&
        (i >= names.size() || names[i].empty())) {
      const auto& col = static_cast<const ColumnExpr&>(*exprs_[i]);
      size_t dot = col.name().find('.');
      if (dot != std::string::npos) {
        c.qualifier = col.name().substr(0, dot);
        c.name = col.name().substr(dot + 1);
      } else {
        c.name = col.name();
      }
    }
    c.type = InferType(*exprs_[i], in);
    schema_.AddColumn(std::move(c));
  }
}

Status ProjectNode::Open() {
  for (auto& e : exprs_) RETURN_IF_ERROR(e->Bind(child_->output_schema()));
  return child_->Open();
}

Result<bool> ProjectNode::Next(Row* out) {
  Row in;
  ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (auto& e : exprs_) {
    ASSIGN_OR_RETURN(Value v, e->Eval(in));
    out->push_back(std::move(v));
  }
  return true;
}

std::string ProjectNode::Describe() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  return out + ")";
}

// ---- NestedLoopJoin ----

NestedLoopJoinNode::NestedLoopJoinNode(PlanPtr left, PlanPtr right,
                                       ExprPtr predicate)
    : left_(std::move(left)), right_(std::move(right)),
      predicate_(std::move(predicate)) {
  schema_ = Schema::Concat(left_->output_schema(), right_->output_schema());
}

Status NestedLoopJoinNode::Open() {
  if (predicate_ != nullptr) RETURN_IF_ERROR(predicate_->Bind(schema_));
  RETURN_IF_ERROR(left_->Open());
  RETURN_IF_ERROR(right_->Open());
  right_rows_.clear();
  Row r;
  while (true) {
    ASSIGN_OR_RETURN(bool more, right_->Next(&r));
    if (!more) break;
    right_rows_.push_back(r);
  }
  right_->Close();
  left_valid_ = false;
  right_pos_ = 0;
  return Status::OK();
}

Result<bool> NestedLoopJoinNode::Next(Row* out) {
  while (true) {
    if (!left_valid_) {
      ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
      if (!more) return false;
      left_valid_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& r = right_rows_[right_pos_++];
      out->clear();
      out->reserve(left_row_.size() + r.size());
      out->insert(out->end(), left_row_.begin(), left_row_.end());
      out->insert(out->end(), r.begin(), r.end());
      if (predicate_ == nullptr) return true;
      ASSIGN_OR_RETURN(bool pass, predicate_->EvalBool(*out));
      if (pass) return true;
    }
    left_valid_ = false;
  }
}

void NestedLoopJoinNode::Close() {
  left_->Close();
  right_rows_.clear();
}

std::string NestedLoopJoinNode::Describe() const {
  return "NestedLoopJoin(" +
         (predicate_ ? predicate_->ToString() : std::string("true")) + ")";
}

// ---- HashJoin ----

HashJoinNode::HashJoinNode(PlanPtr left, PlanPtr right,
                           std::vector<ExprPtr> left_keys,
                           std::vector<ExprPtr> right_keys, ExprPtr residual)
    : left_(std::move(left)), right_(std::move(right)),
      left_keys_(std::move(left_keys)), right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {
  schema_ = Schema::Concat(left_->output_schema(), right_->output_schema());
}

Status HashJoinNode::Open() {
  for (auto& k : left_keys_) RETURN_IF_ERROR(k->Bind(left_->output_schema()));
  for (auto& k : right_keys_) RETURN_IF_ERROR(k->Bind(right_->output_schema()));
  if (residual_ != nullptr) RETURN_IF_ERROR(residual_->Bind(schema_));
  RETURN_IF_ERROR(right_->Open());
  build_.clear();
  Row r;
  while (true) {
    ASSIGN_OR_RETURN(bool more, right_->Next(&r));
    if (!more) break;
    Row key;
    key.reserve(right_keys_.size());
    for (auto& k : right_keys_) {
      ASSIGN_OR_RETURN(Value v, k->Eval(r));
      key.push_back(std::move(v));
    }
    build_.emplace(HashRow(key), r);
  }
  right_->Close();
  RETURN_IF_ERROR(left_->Open());
  matches_.clear();
  match_pos_ = 0;
  return Status::OK();
}

Result<bool> HashJoinNode::Next(Row* out) {
  while (true) {
    while (match_pos_ < matches_.size()) {
      const Row& r = *matches_[match_pos_++];
      out->clear();
      out->reserve(probe_row_.size() + r.size());
      out->insert(out->end(), probe_row_.begin(), probe_row_.end());
      out->insert(out->end(), r.begin(), r.end());
      if (residual_ == nullptr) return true;
      ASSIGN_OR_RETURN(bool pass, residual_->EvalBool(*out));
      if (pass) return true;
    }
    ASSIGN_OR_RETURN(bool more, left_->Next(&probe_row_));
    if (!more) return false;
    Row key;
    key.reserve(left_keys_.size());
    bool has_null = false;
    for (auto& k : left_keys_) {
      ASSIGN_OR_RETURN(Value v, k->Eval(probe_row_));
      has_null = has_null || v.is_null();
      key.push_back(std::move(v));
    }
    matches_.clear();
    match_pos_ = 0;
    if (has_null) continue;  // NULL keys never join
    auto [lo, hi] = build_.equal_range(HashRow(key));
    for (auto it = lo; it != hi; ++it) {
      // Verify actual key equality (hash collisions).
      bool equal = true;
      for (size_t i = 0; i < right_keys_.size() && equal; ++i) {
        auto rv = right_keys_[i]->Eval(it->second);
        if (!rv.ok() || rv.value().is_null() ||
            rv.value().Compare(key[i]) != 0) {
          equal = false;
        }
      }
      if (equal) matches_.push_back(&it->second);
    }
  }
}

void HashJoinNode::Close() {
  left_->Close();
  build_.clear();
  matches_.clear();
}

std::string HashJoinNode::Describe() const {
  std::string out = "HashJoin(";
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += left_keys_[i]->ToString() + " = " + right_keys_[i]->ToString();
  }
  if (residual_ != nullptr) out += " AND " + residual_->ToString();
  return out + ")";
}

// ---- Sort ----

SortNode::SortNode(PlanPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

Status SortNode::Open() {
  for (auto& k : keys_) RETURN_IF_ERROR(k.expr->Bind(child_->output_schema()));
  RETURN_IF_ERROR(child_->Open());
  rows_.clear();
  Row r;
  while (true) {
    ASSIGN_OR_RETURN(bool more, child_->Next(&r));
    if (!more) break;
    rows_.push_back(r);
  }
  child_->Close();
  // Precompute sort keys per row to avoid re-evaluating in the comparator
  // (and to keep the comparator exception/Status free).
  std::vector<std::pair<Row, size_t>> keyed;
  keyed.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    Row key;
    key.reserve(keys_.size());
    for (auto& k : keys_) {
      ASSIGN_OR_RETURN(Value v, k.expr->Eval(rows_[i]));
      key.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(key), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [this](const auto& a, const auto& b) {
                     for (size_t i = 0; i < keys_.size(); ++i) {
                       int c = a.first[i].Compare(b.first[i]);
                       if (c != 0) return keys_[i].ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (const auto& [key, idx] : keyed) sorted.push_back(std::move(rows_[idx]));
  rows_ = std::move(sorted);
  pos_ = 0;
  return Status::OK();
}

Result<bool> SortNode::Next(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

void SortNode::Close() { rows_.clear(); }

std::string SortNode::Describe() const {
  std::string out = "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    out += keys_[i].ascending ? " ASC" : " DESC";
  }
  return out + ")";
}

// ---- Aggregate ----

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kCountStar: return "COUNT(*)";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

AggregateNode::AggregateNode(PlanPtr child, std::vector<ExprPtr> group_by,
                             std::vector<std::string> group_names,
                             std::vector<AggSpec> aggs)
    : child_(std::move(child)), group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  const Schema& in = child_->output_schema();
  for (size_t i = 0; i < group_by_.size(); ++i) {
    Column c;
    c.name = i < group_names.size() && !group_names[i].empty()
                 ? group_names[i]
                 : group_by_[i]->ToString();
    c.type = InferType(*group_by_[i], in);
    schema_.AddColumn(std::move(c));
  }
  for (const auto& a : aggs_) {
    Column c;
    c.name = !a.output_name.empty()
                 ? a.output_name
                 : std::string(AggFuncName(a.func)) +
                       (a.arg ? "(" + a.arg->ToString() + ")" : "");
    switch (a.func) {
      case AggFunc::kCount:
      case AggFunc::kCountStar:
        c.type = DataType::kInt;
        break;
      case AggFunc::kAvg:
        c.type = DataType::kDouble;
        break;
      default:
        c.type = a.arg ? InferType(*a.arg, in) : DataType::kDouble;
    }
    schema_.AddColumn(std::move(c));
  }
}

namespace {
struct AggState {
  Row group;
  std::vector<int64_t> counts;
  std::vector<double> sums;
  std::vector<Value> mins;
  std::vector<Value> maxs;
  std::vector<bool> all_int;
};
}  // namespace

Status AggregateNode::Open() {
  for (auto& g : group_by_) RETURN_IF_ERROR(g->Bind(child_->output_schema()));
  for (auto& a : aggs_) {
    if (a.arg) RETURN_IF_ERROR(a.arg->Bind(child_->output_schema()));
  }
  RETURN_IF_ERROR(child_->Open());

  std::unordered_map<size_t, std::vector<AggState>> groups;
  Row r;
  bool any_input = false;
  while (true) {
    ASSIGN_OR_RETURN(bool more, child_->Next(&r));
    if (!more) break;
    any_input = true;
    Row gkey;
    gkey.reserve(group_by_.size());
    for (auto& g : group_by_) {
      ASSIGN_OR_RETURN(Value v, g->Eval(r));
      gkey.push_back(std::move(v));
    }
    size_t h = HashRow(gkey);
    AggState* state = nullptr;
    for (auto& cand : groups[h]) {
      if (CompareRows(cand.group, gkey) == 0) {
        state = &cand;
        break;
      }
    }
    if (state == nullptr) {
      AggState fresh;
      fresh.group = gkey;
      fresh.counts.assign(aggs_.size(), 0);
      fresh.sums.assign(aggs_.size(), 0.0);
      fresh.mins.assign(aggs_.size(), Value::Null());
      fresh.maxs.assign(aggs_.size(), Value::Null());
      fresh.all_int.assign(aggs_.size(), true);
      groups[h].push_back(std::move(fresh));
      state = &groups[h].back();
    }
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggSpec& a = aggs_[i];
      if (a.func == AggFunc::kCountStar) {
        state->counts[i] += 1;
        continue;
      }
      ASSIGN_OR_RETURN(Value v, a.arg->Eval(r));
      if (v.is_null()) continue;
      state->counts[i] += 1;
      switch (a.func) {
        case AggFunc::kSum:
        case AggFunc::kAvg: {
          ASSIGN_OR_RETURN(Value num, v.CastTo(DataType::kDouble));
          state->sums[i] += num.AsDouble();
          if (v.type() != DataType::kInt) state->all_int[i] = false;
          break;
        }
        case AggFunc::kMin:
          if (state->mins[i].is_null() || v.Compare(state->mins[i]) < 0) {
            state->mins[i] = v;
          }
          break;
        case AggFunc::kMax:
          if (state->maxs[i].is_null() || v.Compare(state->maxs[i]) > 0) {
            state->maxs[i] = v;
          }
          break;
        default:
          break;
      }
    }
  }
  child_->Close();

  // Emit groups; to keep deterministic output, order by group key.
  results_.clear();
  std::vector<const AggState*> states;
  for (auto& [h, bucket] : groups) {
    for (auto& s : bucket) states.push_back(&s);
  }
  std::sort(states.begin(), states.end(), [](const AggState* a, const AggState* b) {
    return CompareRows(a->group, b->group) < 0;
  });
  auto emit = [&](const AggState& s) {
    Row out = s.group;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      switch (aggs_[i].func) {
        case AggFunc::kCount:
        case AggFunc::kCountStar:
          out.push_back(Value(s.counts[i]));
          break;
        case AggFunc::kSum:
          if (s.counts[i] == 0) out.push_back(Value::Null());
          else if (s.all_int[i]) out.push_back(Value(static_cast<int64_t>(s.sums[i])));
          else out.push_back(Value(s.sums[i]));
          break;
        case AggFunc::kAvg:
          out.push_back(s.counts[i] == 0
                            ? Value::Null()
                            : Value(s.sums[i] / static_cast<double>(s.counts[i])));
          break;
        case AggFunc::kMin:
          out.push_back(s.mins[i]);
          break;
        case AggFunc::kMax:
          out.push_back(s.maxs[i]);
          break;
      }
    }
    results_.push_back(std::move(out));
  };
  for (const AggState* s : states) emit(*s);
  // Global aggregate over empty input still yields one row.
  if (group_by_.empty() && !any_input) {
    AggState s;
    s.group = {};
    s.counts.assign(aggs_.size(), 0);
    s.sums.assign(aggs_.size(), 0.0);
    s.mins.assign(aggs_.size(), Value::Null());
    s.maxs.assign(aggs_.size(), Value::Null());
    s.all_int.assign(aggs_.size(), true);
    emit(s);
  }
  pos_ = 0;
  return Status::OK();
}

Result<bool> AggregateNode::Next(Row* out) {
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  return true;
}

void AggregateNode::Close() { results_.clear(); }

std::string AggregateNode::Describe() const {
  std::string out = "Aggregate(";
  for (size_t i = 0; i < group_by_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_by_[i]->ToString();
  }
  if (!group_by_.empty() && !aggs_.empty()) out += "; ";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggFuncName(aggs_[i].func);
    if (aggs_[i].arg) out += "(" + aggs_[i].arg->ToString() + ")";
  }
  return out + ")";
}

// ---- Distinct ----

DistinctNode::DistinctNode(PlanPtr child) : child_(std::move(child)) {}

Status DistinctNode::Open() {
  seen_rows_.clear();
  return child_->Open();
}

Result<bool> DistinctNode::Next(Row* out) {
  while (true) {
    ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    size_t h = HashRow(*out);
    auto [lo, hi] = seen_rows_.equal_range(h);
    bool dup = false;
    for (auto it = lo; it != hi; ++it) {
      if (CompareRows(it->second, *out) == 0) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      seen_rows_.emplace(h, *out);
      return true;
    }
  }
}

void DistinctNode::Close() {
  child_->Close();
  seen_rows_.clear();
}

// ---- Limit ----

LimitNode::LimitNode(PlanPtr child, int64_t limit, int64_t offset)
    : child_(std::move(child)), limit_(limit), offset_(offset) {}

Status LimitNode::Open() {
  emitted_ = 0;
  skipped_ = 0;
  return child_->Open();
}

Result<bool> LimitNode::Next(Row* out) {
  while (skipped_ < offset_) {
    ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    ++skipped_;
  }
  if (limit_ >= 0 && emitted_ >= limit_) return false;
  ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  ++emitted_;
  return true;
}

std::string LimitNode::Describe() const {
  std::string out = "Limit(" + std::to_string(limit_);
  if (offset_ > 0) out += " OFFSET " + std::to_string(offset_);
  return out + ")";
}

// ---- Values ----

ValuesNode::ValuesNode(Schema schema, std::vector<Row> rows)
    : schema_(std::move(schema)), rows_(std::move(rows)) {}

Status ValuesNode::Open() {
  pos_ = 0;
  return Status::OK();
}

Result<bool> ValuesNode::Next(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

std::string ValuesNode::Describe() const {
  return "Values(" + std::to_string(rows_.size()) + " rows)";
}

}  // namespace xmlrdb::rdb
