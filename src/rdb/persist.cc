#include "rdb/persist.h"

#include <cstdio>
#include <sstream>

#include "common/str_util.h"

namespace xmlrdb::rdb {

namespace {

std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) return Status::ParseError("dangling escape");
    switch (s[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: return Status::ParseError("unknown escape");
    }
  }
  return out;
}

std::string SerializeValue(const Value& v) {
  if (v.is_null()) return "\\N";
  switch (v.type()) {
    case DataType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      return buf;
    }
    case DataType::kString:
      return EscapeField(v.AsString());
    default:
      return v.ToString();
  }
}

Result<Value> DeserializeValue(const std::string& field, DataType type) {
  if (field == "\\N") return Value::Null();
  switch (type) {
    case DataType::kInt: {
      ASSIGN_OR_RETURN(int64_t v, ParseInt64(field));
      return Value(v);
    }
    case DataType::kDouble: {
      ASSIGN_OR_RETURN(double v, ParseDouble(field));
      return Value(v);
    }
    case DataType::kBool:
      return Value(field == "true");
    case DataType::kString: {
      ASSIGN_OR_RETURN(std::string s, UnescapeField(field));
      return Value(std::move(s));
    }
    default:
      return Status::ParseError("cannot load NULL-typed column");
  }
}

/// Splits a record on unescaped tabs.
std::vector<std::string> SplitRecord(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      cur += line[i];
      cur += line[i + 1];
      ++i;
      continue;
    }
    if (line[i] == '\t') {
      out.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    cur += line[i];
  }
  out.push_back(std::move(cur));
  return out;
}

/// getline semantics over an in-memory file: a trailing newline does not
/// produce a final empty line.
std::vector<std::string> SplitLines(const std::string& data) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < data.size()) {
    size_t nl = data.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(data.substr(start));
      break;
    }
    lines.push_back(data.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Writes `contents` to `path` in one append and syncs it.
Status WriteFileSynced(Env* env, const std::string& path,
                       const std::string& contents) {
  ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                   env->NewWritableFile(path, /*truncate=*/true));
  RETURN_IF_ERROR(file->Append(contents));
  RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

}  // namespace

Status SaveTables(Env* env, const std::vector<const Table*>& tables,
                  const std::string& dir) {
  RETURN_IF_ERROR(env->CreateDirs(dir));

  std::ostringstream catalog;
  catalog << "xmlrdb-catalog 1\n";
  for (const Table* t : tables) {
    catalog << "table\t" << EscapeField(t->name()) << "\n";
    for (const auto& col : t->schema().columns()) {
      catalog << "column\t" << EscapeField(col.name) << "\t"
              << DataTypeName(col.type) << "\t" << (col.nullable ? "1" : "0")
              << "\n";
    }
    for (const auto& idx : t->indexes()) {
      catalog << "index\t" << EscapeField(idx->name());
      for (size_t c : idx->key_columns()) {
        catalog << "\t" << EscapeField(t->schema().column(c).name);
      }
      catalog << "\n";
    }
  }
  RETURN_IF_ERROR(WriteFileSynced(env, dir + "/catalog.xdb", catalog.str()));
  RETURN_IF_ERROR(env->CrashPoint("persist.after_catalog"));

  for (const Table* t : tables) {
    // Rows (tombstones compacted away).
    std::ostringstream rows;
    for (RowId rid = 0; rid < t->num_slots(); ++rid) {
      if (!t->IsLive(rid)) continue;
      const Row& row = t->row(rid);
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) rows << '\t';
        rows << SerializeValue(row[i]);
      }
      rows << '\n';
    }
    RETURN_IF_ERROR(
        WriteFileSynced(env, dir + "/" + t->name() + ".tbl", rows.str()));
    RETURN_IF_ERROR(env->CrashPoint("persist.after_table"));
  }
  return Status::OK();
}

Status SaveDatabase(Env* env, const Database& db, const std::string& dir) {
  std::vector<const Table*> tables;
  for (const std::string& tname : db.TableNames()) {
    const Table* t = db.FindTable(tname);
    if (t != nullptr) tables.push_back(t);
  }
  return SaveTables(env, tables, dir);
}

Status SaveDatabase(const Database& db, const std::string& dir) {
  return SaveDatabase(Env::Default(), db, dir);
}

Result<std::unique_ptr<Database>> LoadDatabase(Env* env,
                                               const std::string& dir) {
  auto catalog_data = env->ReadFileToString(dir + "/catalog.xdb");
  if (!catalog_data.ok()) return Status::NotFound("no catalog in " + dir);
  std::vector<std::string> catalog_lines = SplitLines(catalog_data.value());
  if (catalog_lines.empty() || catalog_lines[0] != "xmlrdb-catalog 1") {
    return Status::ParseError(
        "unrecognised catalog header '" +
        (catalog_lines.empty() ? std::string() : catalog_lines[0]) + "'");
  }

  auto db = std::make_unique<Database>();
  std::string pending_table;
  Schema pending_schema;
  std::vector<std::pair<std::string, std::vector<std::string>>> pending_indexes;

  auto flush_table = [&]() -> Status {
    if (pending_table.empty()) return Status::OK();
    ASSIGN_OR_RETURN(Table * t, db->CreateTable(pending_table, pending_schema));
    // Rows first (index backfill is cheaper than incremental maintenance).
    ASSIGN_OR_RETURN(std::string row_data,
                     env->ReadFileToString(dir + "/" + pending_table + ".tbl"));
    for (const std::string& line : SplitLines(row_data)) {
      if (line.empty() && pending_schema.size() != 1) continue;
      std::vector<std::string> fields = SplitRecord(line);
      if (fields.size() != pending_schema.size()) {
        return Status::ParseError("bad record arity in " + pending_table);
      }
      Row row;
      row.reserve(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) {
        ASSIGN_OR_RETURN(Value v, DeserializeValue(fields[i],
                                                   pending_schema.column(i).type));
        row.push_back(std::move(v));
      }
      ASSIGN_OR_RETURN([[maybe_unused]] RowId rid, t->Insert(std::move(row)));
    }
    for (const auto& [iname, cols] : pending_indexes) {
      RETURN_IF_ERROR(t->CreateIndex(iname, cols));
    }
    pending_table.clear();
    pending_schema = Schema();
    pending_indexes.clear();
    return Status::OK();
  };

  for (size_t li = 1; li < catalog_lines.size(); ++li) {
    const std::string& line = catalog_lines[li];
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitRecord(line);
    if (fields[0] == "table") {
      RETURN_IF_ERROR(flush_table());
      if (fields.size() != 2) return Status::ParseError("bad table line");
      ASSIGN_OR_RETURN(pending_table, UnescapeField(fields[1]));
    } else if (fields[0] == "column") {
      if (fields.size() != 4) return Status::ParseError("bad column line");
      Column col;
      ASSIGN_OR_RETURN(col.name, UnescapeField(fields[1]));
      ASSIGN_OR_RETURN(col.type, ParseDataType(fields[2]));
      col.nullable = fields[3] == "1";
      pending_schema.AddColumn(std::move(col));
    } else if (fields[0] == "index") {
      if (fields.size() < 3) return Status::ParseError("bad index line");
      ASSIGN_OR_RETURN(std::string iname, UnescapeField(fields[1]));
      std::vector<std::string> cols;
      for (size_t i = 2; i < fields.size(); ++i) {
        ASSIGN_OR_RETURN(std::string c, UnescapeField(fields[i]));
        cols.push_back(std::move(c));
      }
      pending_indexes.emplace_back(std::move(iname), std::move(cols));
    } else {
      return Status::ParseError("unknown catalog record '" + fields[0] + "'");
    }
  }
  RETURN_IF_ERROR(flush_table());
  return db;
}

Result<std::unique_ptr<Database>> LoadDatabase(const std::string& dir) {
  return LoadDatabase(Env::Default(), dir);
}

}  // namespace xmlrdb::rdb
