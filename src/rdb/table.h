// Row-store tables with secondary B+-tree indexes.
//
// Rows live in an append-only vector; deletes set a tombstone so row ids stay
// stable for index entries. Indexes map (key columns..., row id) into a
// B+-tree; duplicate keys are therefore naturally supported.
//
// Concurrency: every Table carries a reader-writer mutex, reachable via
// mutex(). The public mutators (Insert, InsertMany, Delete, Update,
// CreateIndex) acquire it exclusively themselves, so direct callers — the
// shredding mappings, bulk loads — are safe against concurrent readers. The
// SQL engine instead takes statement-scope locks in Database::Execute
// (shared for the tables a SELECT scans, exclusive for a DML target) and
// calls the *Unlocked variants, keeping one acquisition per statement. The
// cheap readers (num_rows, row, IsLive, indexes) never lock: their callers
// must hold mutex() shared — which every statement run through Execute does.

#ifndef XMLRDB_RDB_TABLE_H_
#define XMLRDB_RDB_TABLE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdb/btree.h"
#include "rdb/schema.h"
#include "rdb/value.h"

namespace xmlrdb::rdb {

using RowId = uint64_t;

class Table;

/// Observer of a table's mutations — the write-ahead log implements this to
/// obtain a redo record for every row change and index creation, no matter
/// whether the mutation arrived through a SQL statement or a direct call
/// from a shredding mapping. Callbacks run with the table's exclusive lock
/// held, after validation and *before* the in-memory change is applied; an
/// error return vetoes the mutation (the caller sees the error and the table
/// is untouched). Rows are identified by value, not RowId: row ids are not
/// stable across a snapshot save/load cycle, row contents are.
class TableMutationSink {
 public:
  virtual ~TableMutationSink() = default;
  virtual Status OnInsert(const Table& table, const Row& row) = 0;
  virtual Status OnDelete(const Table& table, const Row& row) = 0;
  virtual Status OnUpdate(const Table& table, const Row& old_row,
                          const Row& new_row) = 0;
  virtual Status OnCreateIndex(const Table& table, const std::string& name,
                               const std::vector<std::string>& columns) = 0;
};

/// A secondary index over one or more columns of a table.
class Index {
 public:
  Index(std::string name, const Table* table, std::vector<size_t> key_columns);

  const std::string& name() const { return name_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }
  size_t num_entries() const { return tree_.size(); }
  const BTree& tree() const { return tree_; }

  /// Row ids whose key columns equal `key` (key.size() may be a prefix of
  /// the index key), in key order.
  std::vector<RowId> LookupEqual(const Row& key) const;

  /// Row ids whose key is within [lower, upper] under prefix comparison;
  /// either bound may be empty (unbounded). Bound inclusivity is per-side.
  std::vector<RowId> LookupRange(const Row& lower, bool lower_inclusive,
                                 const Row& upper, bool upper_inclusive) const;

  /// True if the first `n` index key columns equal `cols[0..n)`.
  bool MatchesPrefix(const std::vector<size_t>& cols) const;

 private:
  friend class Table;
  void Add(const Row& row, RowId rid);
  void Remove(const Row& row, RowId rid);
  Row MakeKey(const Row& row, RowId rid) const;

  std::string name_;
  const Table* table_;
  std::vector<size_t> key_columns_;
  BTree tree_;
};

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  ~Table();

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// The table's reader-writer lock. Scans hold it shared across the whole
  /// statement (the executor reads rows_ by reference); mutators hold it
  /// exclusive. Lock tables in ascending name order when taking several.
  std::shared_mutex& mutex() const { return mu_; }

  /// Live (non-deleted) row count.
  size_t num_rows() const { return live_rows_; }
  /// Physical slot count including tombstones.
  size_t num_slots() const { return rows_.size(); }

  /// Validates against the schema, appends, and maintains indexes.
  /// Takes mutex() exclusively; use InsertUnlocked when already holding it.
  Result<RowId> Insert(Row row);
  Result<RowId> InsertUnlocked(Row row);

  /// Batch insert without per-row Status overhead; stops at first error.
  /// Holds mutex() exclusively for the whole batch (one atomic unit for
  /// concurrent readers).
  Status InsertMany(std::vector<Row> rows);

  /// Tombstones a row and removes its index entries.
  Status Delete(RowId rid);
  Status DeleteUnlocked(RowId rid);

  /// Replaces a row in place (revalidates, re-indexes).
  Status Update(RowId rid, Row row);
  Status UpdateUnlocked(RowId rid, Row row);

  /// Drops every row (and tombstone slot) and empties all indexes; the
  /// schema and index definitions stay. Unlike repeated Delete, slots do
  /// not accumulate — scratch tables reused across queries stay small.
  /// Takes mutex() exclusively. Bypasses the mutation sink: Truncate is for
  /// transient scratch tables, which are never logged.
  void Truncate();

  bool IsLive(RowId rid) const {
    return rid < rows_.size() && !deleted_[rid];
  }
  const Row& row(RowId rid) const { return rows_[rid]; }

  /// Creates a secondary index named `name` over `column_names` and
  /// backfills it from existing rows.
  Status CreateIndex(const std::string& name,
                     const std::vector<std::string>& column_names);
  Status CreateIndexUnlocked(const std::string& name,
                             const std::vector<std::string>& column_names);

  const std::vector<std::unique_ptr<Index>>& indexes() const { return indexes_; }
  const Index* FindIndex(const std::string& name) const;

  /// First index whose key starts with exactly these columns, if any.
  const Index* FindIndexByColumns(const std::vector<size_t>& cols) const;

  /// Approximate heap footprint of data + indexes (storage benchmark).
  /// Takes mutex() shared.
  size_t FootprintBytes() const;

  /// Installs (or clears, with nullptr) the mutation observer. Set while no
  /// mutator is running — Database attaches the WAL before serving traffic.
  void set_mutation_sink(TableMutationSink* sink) { sink_ = sink; }
  TableMutationSink* mutation_sink() const { return sink_; }

 private:
  size_t FootprintBytesUnlocked() const;

  std::string name_;
  Schema schema_;
  mutable std::shared_mutex mu_;
  std::vector<Row> rows_;
  std::vector<bool> deleted_;
  size_t live_rows_ = 0;
  std::vector<std::unique_ptr<Index>> indexes_;
  TableMutationSink* sink_ = nullptr;
  // This table's contribution to the process-wide tables.row_bytes /
  // tables.index_bytes resource gauges, maintained incrementally under mu_
  // so the gauges never require an O(rows) walk. The destructor gives the
  // contribution back — scratch tables and virtual-table snapshots churn
  // constantly and must net to zero.
  int64_t tracked_row_bytes_ = 0;
  int64_t tracked_index_bytes_ = 0;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_TABLE_H_
