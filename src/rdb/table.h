// Row-store tables with MVCC version chains and secondary B+-tree indexes.
//
// Each row id names a slot in a chunked, append-only slot directory; a slot
// holds the newest version of the row, chained (newest first) to older
// versions. Versions carry LSN stamps (see rdb/mvcc.h): `created` is the
// commit LSN that produced the version, `deleted` the commit LSN that
// removed it (0 = live). Snapshot readers walk a chain lock-free to the
// first version their read view can see; writer-side accessors (IsLive,
// row) see the newest state. Row ids stay stable for index entries; the
// slot directory grows by chunks whose pointers are published atomically,
// so readers never race a reallocation.
//
// Concurrency: mutators (Insert, InsertMany, Delete, Update, CreateIndex)
// acquire the table's writer mutex exclusively themselves; the SQL engine
// takes statement-scope exclusive locks for DML in Database::Execute and
// calls the *Unlocked variants. Read-only statements take NO table lock —
// they scan through VisibleRow under a snapshot read view. Index structures
// get their own small latch (index_mu_): writers hold it exclusively per
// tree operation, lock-free readers hold it shared for the duration of one
// lookup or index-list scan.
//
// Index entries under MVCC are maintained lazily: Delete keeps the entries
// (old snapshots still need them), Update only adds entries for changed
// keys. Scans therefore re-verify that the visible version's key matches
// the entry; garbage collection removes entries whose versions no snapshot
// can reach.
//
// Tables can opt out of versioning (set_mvcc(false)) — used for transient
// scratch tables and virtual-table snapshots, which are statement- or
// thread-private: their mutations stamp nothing, update in place, and
// maintain indexes eagerly, exactly like the pre-MVCC engine.

#ifndef XMLRDB_RDB_TABLE_H_
#define XMLRDB_RDB_TABLE_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "rdb/btree.h"
#include "rdb/mvcc.h"
#include "rdb/schema.h"
#include "rdb/value.h"

namespace xmlrdb::rdb {

using RowId = uint64_t;

class Table;

/// One version of a row. `created`/`deleted` hold commit LSNs or
/// provisional stamps (rdb/mvcc.h); `next` points at the next-older
/// version. Readers touch versions lock-free; all fields a reader loads
/// are atomics published with release stores.
struct RowVersion {
  explicit RowVersion(Row r) : row(std::move(r)) {}
  Row row;
  std::atomic<uint64_t> created{0};
  std::atomic<uint64_t> deleted{0};
  std::atomic<RowVersion*> next{nullptr};
};

/// Observer of a table's mutations — the write-ahead log implements this to
/// obtain a redo record for every row change and index creation, no matter
/// whether the mutation arrived through a SQL statement or a direct call
/// from a shredding mapping. Callbacks run with the table's exclusive lock
/// held, after validation and *before* the in-memory change is applied; an
/// error return vetoes the mutation (the caller sees the error and the table
/// is untouched). Rows are identified by value, not RowId: row ids are not
/// stable across a snapshot save/load cycle, row contents are.
class TableMutationSink {
 public:
  virtual ~TableMutationSink() = default;
  virtual Status OnInsert(const Table& table, const Row& row) = 0;
  virtual Status OnDelete(const Table& table, const Row& row) = 0;
  virtual Status OnUpdate(const Table& table, const Row& old_row,
                          const Row& new_row) = 0;
  virtual Status OnCreateIndex(const Table& table, const std::string& name,
                               const std::vector<std::string>& columns) = 0;
};

/// A secondary index over one or more columns of a table. Tree access must
/// be covered by the owning table's index latch — Table's lookup wrappers
/// (IndexEntriesInRange, and the mutators) do that; direct tree use is only
/// safe single-threaded (tests).
class Index {
 public:
  Index(std::string name, const Table* table, std::vector<size_t> key_columns);

  const std::string& name() const { return name_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }
  size_t num_entries() const { return tree_.size(); }
  const BTree& tree() const { return tree_; }

  /// Row ids whose key columns equal `key` (key.size() may be a prefix of
  /// the index key), in key order.
  std::vector<RowId> LookupEqual(const Row& key) const;

  /// Row ids whose key is within [lower, upper] under prefix comparison;
  /// either bound may be empty (unbounded). Bound inclusivity is per-side.
  std::vector<RowId> LookupRange(const Row& lower, bool lower_inclusive,
                                 const Row& upper, bool upper_inclusive) const;

  /// Full index entries (key columns + rid) within the bounds, in key
  /// order. MVCC scans need the entry key to reject entries whose version
  /// is not the one visible at the snapshot.
  std::vector<Row> EntriesInRange(const Row& lower, bool lower_inclusive,
                                  const Row& upper,
                                  bool upper_inclusive) const;

  /// True if the first `n` index key columns equal `cols[0..n)`.
  bool MatchesPrefix(const std::vector<size_t>& cols) const;

 private:
  friend class Table;
  /// Returns whether the tree changed (false = entry already present /
  /// already absent — expected under lazy MVCC maintenance).
  bool Add(const Row& row, RowId rid);
  bool Remove(const Row& row, RowId rid);
  Row MakeKey(const Row& row, RowId rid) const;
  /// True when the entry's row is live and still carries the entry's key
  /// (lazy maintenance keeps entries for deleted rows and old keys).
  bool EntryIsCurrent(const Row& entry_key) const;

  std::string name_;
  const Table* table_;
  std::vector<size_t> key_columns_;
  BTree tree_;
};

/// Version-GC outcome of one collection pass over a table.
struct TableGcStats {
  size_t versions_freed = 0;       ///< chain versions handed to limbo
  size_t versions_reclaimed = 0;   ///< limbo versions actually freed
  size_t index_entries_removed = 0;
  int64_t bytes_unlinked = 0;      ///< row bytes leaving the version gauge
};

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  ~Table();

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// The table's writer lock. Mutators hold it exclusive; statement-scope
  /// DML in Database does the same. Snapshot readers do NOT take it —
  /// shared acquisition remains for legacy lock mode and for writer-side
  /// consistency checks (FootprintBytes, stats). Lock tables in ascending
  /// name order when taking several.
  std::shared_mutex& mutex() const { return mu_; }

  /// MVCC versioning toggle; default on. Turn off (before first insert)
  /// for statement-/thread-private tables: mutations then keep latest
  /// state only, with eager index maintenance.
  void set_mvcc(bool enabled) { mvcc_ = enabled; }
  bool mvcc_enabled() const { return mvcc_; }

  /// Backpointer used to pin the table alive across an in-flight
  /// transaction's commit (Database sets it when it owns the table).
  void set_self(std::weak_ptr<const Table> self) { self_ = std::move(self); }

  /// Live (non-deleted) row count, newest state.
  size_t num_rows() const { return live_rows_.load(std::memory_order_acquire); }
  /// Physical slot count including tombstones.
  size_t num_slots() const {
    return num_slots_.load(std::memory_order_acquire);
  }

  /// Validates against the schema, appends, and maintains indexes.
  /// Takes mutex() exclusively; use InsertUnlocked when already holding it.
  Result<RowId> Insert(Row row);
  Result<RowId> InsertUnlocked(Row row);

  /// Batch insert without per-row Status overhead; stops at first error.
  /// Holds mutex() exclusively for the whole batch and commits it as one
  /// MVCC visibility unit (snapshot readers see all rows or none).
  Status InsertMany(std::vector<Row> rows);

  /// Marks the newest version deleted. Under MVCC the version and its
  /// index entries stay reachable for older snapshots until GC.
  Status Delete(RowId rid);
  Status DeleteUnlocked(RowId rid);

  /// Replaces a row: pushes a new version onto the chain (MVCC) or updates
  /// in place (non-MVCC). Revalidates and maintains indexes.
  Status Update(RowId rid, Row row);
  Status UpdateUnlocked(RowId rid, Row row);

  /// Drops every row (and tombstone slot) and empties all indexes; the
  /// schema and index definitions stay. Unlike repeated Delete, slots do
  /// not accumulate — scratch tables reused across queries stay small.
  /// Takes mutex() exclusively. Bypasses the mutation sink: Truncate is for
  /// transient scratch tables, which are never logged.
  void Truncate();

  /// Newest-state liveness (writer view): the slot has a version and it is
  /// not deleted (committed or in-flight).
  bool IsLive(RowId rid) const {
    const RowVersion* v = head(rid);
    return v != nullptr && v->deleted.load(std::memory_order_acquire) == 0;
  }
  /// Newest version's row. Caller guarantees the slot is populated (writer
  /// context, or rid < num_slots of a live row).
  const Row& row(RowId rid) const { return head(rid)->row; }

  /// The version of slot `rid` visible to `view`, or nullptr. Lock-free;
  /// safe under an active registered snapshot (or any context that
  /// excludes GC). The returned row is stable for the snapshot's lifetime.
  const Row* VisibleRow(RowId rid, const MvccReadView& view) const {
    const RowVersion* v = head(rid);
    if (v == nullptr) return nullptr;
    if (!mvcc_ || view.read_latest) {
      return v->deleted.load(std::memory_order_acquire) == 0 ? &v->row
                                                             : nullptr;
    }
    for (; v != nullptr; v = v->next.load(std::memory_order_acquire)) {
      if (!view.CreatedVisible(v->created.load(std::memory_order_acquire))) {
        continue;  // too new (or foreign in-flight): try an older version
      }
      if (view.DeletedVisible(v->deleted.load(std::memory_order_acquire))) {
        return nullptr;  // deleted before the snapshot
      }
      return &v->row;
    }
    return nullptr;
  }

  /// Creates a secondary index named `name` over `column_names` and
  /// backfills it from the newest live rows.
  Status CreateIndex(const std::string& name,
                     const std::vector<std::string>& column_names);
  Status CreateIndexUnlocked(const std::string& name,
                             const std::vector<std::string>& column_names);

  /// Raw index list — caller must hold mutex() (any mode) or otherwise
  /// exclude concurrent CreateIndex. Lock-free readers use the latched
  /// accessors below instead.
  const std::vector<std::unique_ptr<Index>>& indexes() const {
    return indexes_;
  }
  const Index* FindIndex(const std::string& name) const;

  /// Snapshot of the index set under the index latch — safe without any
  /// table lock (the planner runs lock-free under MVCC). The pointers live
  /// as long as the table.
  std::vector<const Index*> IndexList() const;

  /// First index whose key starts with exactly these columns, if any.
  /// Takes the index latch shared — safe without any table lock. The
  /// returned index lives as long as the table (Truncate excepted, which
  /// only touches private tables).
  const Index* FindIndexByColumns(const std::vector<size_t>& cols) const;

  /// Latched index-entry range lookup for scans (full keys, key order).
  std::vector<Row> IndexEntriesInRange(const Index* index, const Row& lower,
                                       bool lower_inclusive, const Row& upper,
                                       bool upper_inclusive) const;

  /// Unlinks every version no snapshot at or after `bound` can reach,
  /// removes index entries that served only those versions, and frees
  /// limbo versions once allowed by `floor` (see MvccEngine::ReclaimFloor).
  /// Takes mutex() and the index latch exclusively.
  TableGcStats CollectGarbage(Lsn bound, Lsn floor);

  /// Number of versions parked on the limbo list (tests/introspection).
  size_t LimboSize() const;

  /// Approximate heap footprint of data + indexes (storage benchmark).
  /// Takes mutex() shared.
  size_t FootprintBytes() const;

  /// Bytes currently held by MVCC row versions (the table's contribution
  /// to the mvcc.version_bytes gauge). Takes mutex() shared.
  int64_t version_bytes() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return tracked_version_bytes_;
  }

  /// Installs (or clears, with nullptr) the mutation observer. Set while no
  /// mutator is running — Database attaches the WAL before serving traffic.
  void set_mutation_sink(TableMutationSink* sink) { sink_ = sink; }
  TableMutationSink* mutation_sink() const { return sink_; }

 private:
  // Slot directory: chunk c holds 2^(10+c) slots, so 45 chunk pointers
  // cover ~2^54 rows. Chunk pointers and slot heads are published with
  // release stores; readers index with acquire loads and never see a
  // reallocation (chunks are never moved or freed before the table dies).
  static constexpr size_t kFirstChunkBits = 10;
  static constexpr size_t kNumChunks = 45;
  struct Chunk {
    explicit Chunk(size_t n) : slots(n) {}
    std::vector<std::atomic<RowVersion*>> slots;
  };
  static std::pair<size_t, size_t> SlotPos(RowId rid) {
    uint64_t t = rid + (1ull << kFirstChunkBits);
    size_t level = std::bit_width(t) - 1;
    return {level - kFirstChunkBits, t - (1ull << level)};
  }

  RowVersion* head(RowId rid) const {
    if (rid >= num_slots()) return nullptr;
    auto [c, off] = SlotPos(rid);
    Chunk* ch = chunks_[c].load(std::memory_order_acquire);
    return ch == nullptr ? nullptr
                         : ch->slots[off].load(std::memory_order_acquire);
  }
  /// Appends a slot holding `v` and returns its rid. Writer lock held.
  RowId AppendSlot(RowVersion* v);

  /// Stamps a freshly written provisional/committed stamp according to the
  /// thread's context (replay LSN > open transaction > self-commit) and
  /// returns true if the stamp still needs a self-commit after the call.
  void StampCreate(RowVersion* v, std::vector<std::atomic<uint64_t>*>* own);
  void StampDelete(RowVersion* v, std::vector<std::atomic<uint64_t>*>* own);

  void FreeAllVersions();
  size_t ReclaimLimboLocked(Lsn floor, TableGcStats* stats);

  size_t FootprintBytesUnlocked() const;

  std::string name_;
  Schema schema_;
  mutable std::shared_mutex mu_;
  /// Latch over indexes_ and every tree inside it (see file comment).
  mutable std::shared_mutex index_mu_;
  std::array<std::atomic<Chunk*>, kNumChunks> chunks_{};
  std::atomic<size_t> num_slots_{0};
  std::atomic<size_t> live_rows_{0};
  bool mvcc_ = true;
  std::weak_ptr<const Table> self_;
  std::vector<std::unique_ptr<Index>> indexes_;
  TableMutationSink* sink_ = nullptr;
  /// Versions unlinked from chains but possibly still referenced by a
  /// reader that acquired its snapshot before the unlink. Each entry is
  /// stamped with the visible LSN observed after the unlink; freed once
  /// every active snapshot is newer (guarded by mu_ exclusive).
  std::deque<std::pair<Lsn, RowVersion*>> limbo_;
  // This table's contribution to the process-wide tables.row_bytes /
  // tables.index_bytes / mvcc.version_bytes resource gauges, maintained
  // incrementally under mu_ so the gauges never require an O(rows) walk.
  // The destructor gives the contribution back — scratch tables and
  // virtual-table snapshots churn constantly and must net to zero.
  int64_t tracked_row_bytes_ = 0;
  int64_t tracked_index_bytes_ = 0;
  int64_t tracked_version_bytes_ = 0;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_TABLE_H_
