// Database persistence: save every table (schema, rows, index definitions)
// to a directory and load it back.
//
// Format: `<dir>/catalog.xdb` is a line-oriented catalog; each table's rows
// live in `<dir>/<table>.tbl` as tab-separated records with backslash
// escaping (\t \n \\ and \N for NULL). Values parse back type-directed by
// the column types, so a loaded database answers queries identically
// (verified by tests/persist_test.cc). Tombstoned rows are compacted away on
// save; row ids are therefore NOT stable across a save/load cycle — node ids
// of the shredding mappings are, because they live in columns.
//
// All I/O goes through an Env (env.h), so the fault-injection tests can
// crash a snapshot halfway through; the checkpoint protocol (durability.cc)
// tolerates that because a snapshot only becomes live when the CURRENT
// pointer is flipped to it afterwards. The Env-less overloads use
// Env::Default() and are what non-durability callers (benchmarks, the
// persistence round-trip tests) keep using.

#ifndef XMLRDB_RDB_PERSIST_H_
#define XMLRDB_RDB_PERSIST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdb/database.h"
#include "rdb/env.h"

namespace xmlrdb::rdb {

/// Writes the whole database under `dir` (created if missing).
Status SaveDatabase(const Database& db, const std::string& dir);
Status SaveDatabase(Env* env, const Database& db, const std::string& dir);

/// Writes exactly `tables` under `dir`. The caller guarantees the tables are
/// stable for the duration (holds their locks or owns them exclusively) —
/// this is the entry point Database::Checkpoint uses while already holding
/// the catalog lock, where calling SaveDatabase's TableNames/FindTable would
/// self-deadlock.
Status SaveTables(Env* env, const std::vector<const Table*>& tables,
                  const std::string& dir);

/// Reads a database previously written by SaveDatabase.
Result<std::unique_ptr<Database>> LoadDatabase(const std::string& dir);
Result<std::unique_ptr<Database>> LoadDatabase(Env* env,
                                               const std::string& dir);

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_PERSIST_H_
