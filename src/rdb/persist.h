// Database persistence: save every table (schema, rows, index definitions)
// to a directory and load it back.
//
// Format: `<dir>/catalog.xdb` is a line-oriented catalog; each table's rows
// live in `<dir>/<table>.tbl` as tab-separated records with backslash
// escaping (\t \n \\ and \N for NULL). Values parse back type-directed by
// the column types, so a loaded database answers queries identically
// (verified by tests/persist_test.cc). Tombstoned rows are compacted away on
// save; row ids are therefore NOT stable across a save/load cycle — node ids
// of the shredding mappings are, because they live in columns.

#ifndef XMLRDB_RDB_PERSIST_H_
#define XMLRDB_RDB_PERSIST_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "rdb/database.h"

namespace xmlrdb::rdb {

/// Writes the whole database under `dir` (created if missing).
Status SaveDatabase(const Database& db, const std::string& dir);

/// Reads a database previously written by SaveDatabase.
Result<std::unique_ptr<Database>> LoadDatabase(const std::string& dir);

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_PERSIST_H_
