// Typed relational values.
//
// The engine supports four concrete types (INTEGER, DOUBLE, VARCHAR, BOOLEAN)
// plus SQL NULL. Values are ordered within a type; cross-type comparison of
// INTEGER and DOUBLE coerces to DOUBLE; any other cross-type comparison is a
// TypeError. NULL ordering follows "NULLs first" for sort/index purposes but
// comparisons against NULL in predicates yield no match (SQL-style, except we
// use two-valued logic: NULL cmp x is simply false).

#ifndef XMLRDB_RDB_VALUE_H_
#define XMLRDB_RDB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace xmlrdb::rdb {

enum class DataType { kNull, kInt, kDouble, kString, kBool };

const char* DataTypeName(DataType t);

/// Parses a SQL type name ("INTEGER", "INT", "DOUBLE", "VARCHAR", "TEXT",
/// "BOOLEAN"...) to a DataType.
Result<DataType> ParseDataType(const std::string& name);

class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}
  explicit Value(bool v) : rep_(v) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  DataType type() const;

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const;  ///< also widens an int
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  bool AsBool() const { return std::get<bool>(rep_); }

  /// Total order used by sort/index: NULL < everything; numerics by value
  /// (int/double compared exactly, even above 2^53; NaN orders after every
  /// other number so the order stays strict-weak); strings lexicographic;
  /// bool false<true. Distinct non-numeric type pairs order by type id
  /// (stable, arbitrary).
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  size_t Hash() const;

  std::string ToString() const;

  /// Coerces to `target` (numeric widening/narrowing, string parse).
  Result<Value> CastTo(DataType target) const;

  /// Approximate heap footprint in bytes (for the storage-size benchmark).
  size_t FootprintBytes() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> rep_;
};

using Row = std::vector<Value>;

/// Hash of a composite key (row prefix).
size_t HashRow(const Row& row);

/// Lexicographic comparison of two rows of equal arity.
int CompareRows(const Row& a, const Row& b);

std::string RowToString(const Row& row);

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_VALUE_H_
