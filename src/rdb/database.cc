#include "rdb/database.h"

#include <algorithm>
#include <sstream>

#include "common/metrics.h"
#include "rdb/sql_parser.h"

namespace xmlrdb::rdb {

std::string QueryResult::ToString() const {
  if (!plan_text.empty()) return plan_text;
  std::ostringstream os;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) os << " | ";
    os << schema.column(i).QualifiedName();
  }
  os << "\n";
  for (const Row& r : rows) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i > 0) os << " | ";
      os << r[i].ToString();
    }
    os << "\n";
  }
  os << "(" << rows.size() << " rows)";
  return os.str();
}

// ---------------------------------------------------------------------------
// Catalog (public methods lock internally; *Locked assume mu_ is held).

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return CreateTableLocked(name, std::move(schema));
}

Result<Table*> Database::CreateTableLocked(const std::string& name,
                                           Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* out = table.get();
  tables_[name] = std::move(table);
  return out;
}

Status Database::DropTable(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  // Drain in-flight statements: any statement using the table acquired its
  // lock while holding the catalog lock we now own exclusively, so once we
  // can take the table lock no reader or writer remains and none can return.
  { std::unique_lock<std::shared_mutex> drain(it->second->mutex()); }
  tables_.erase(it);
  return Status::OK();
}

Table* Database::FindTable(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FindTableLocked(name);
}

const Table* Database::FindTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FindTableLocked(name);
}

Table* Database::FindTableLocked(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTableLocked(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

size_t Database::FootprintBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [_, t] : tables_) total += t->FootprintBytes();
  return total;
}

// ---------------------------------------------------------------------------
// Statement-scope locking.

struct Database::ReadLockSet {
  /// Distinct referenced tables, resolved under the catalog lock.
  std::map<std::string, const Table*> tables;
  /// Shared locks in map (= ascending name) order.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
};

Status Database::LockTablesShared(const std::vector<TableRef>& from,
                                  ReadLockSet* out) const {
  std::shared_lock<std::shared_mutex> catalog(mu_);
  for (const TableRef& ref : from) {
    const Table* t = FindTableLocked(ref.table);
    if (t == nullptr) return Status::NotFound("table '" + ref.table + "'");
    out->tables.emplace(ref.table, t);
  }
  out->locks.reserve(out->tables.size());
  for (const auto& [name, t] : out->tables) {
    out->locks.emplace_back(t->mutex());
  }
  return Status::OK();
}

Status Database::LockTableExclusive(const std::string& name, Table** table,
                                    std::unique_lock<std::shared_mutex>* lock) {
  std::shared_lock<std::shared_mutex> catalog(mu_);
  Table* t = FindTableLocked(name);
  if (t == nullptr) return Status::NotFound("table '" + name + "'");
  *table = t;
  *lock = std::unique_lock<std::shared_mutex>(t->mutex());
  return Status::OK();
}

Result<PlanPtr> Database::PlanWithLocks(const SelectStmt& stmt,
                                        const ReadLockSet& locks) const {
  Planner planner(
      [&locks](const std::string& name) -> const Table* {
        auto it = locks.tables.find(name);
        return it == locks.tables.end() ? nullptr : it->second;
      },
      planner_options_);
  return planner.PlanSelect(stmt);
}

// ---------------------------------------------------------------------------
// SQL entry points.

namespace {

const char* StatementKind(const Statement& stmt) {
  if (std::holds_alternative<SelectStmt>(stmt)) return "select";
  if (std::holds_alternative<CreateTableStmt>(stmt)) return "create_table";
  if (std::holds_alternative<CreateIndexStmt>(stmt)) return "create_index";
  if (std::holds_alternative<DropTableStmt>(stmt)) return "drop_table";
  if (std::holds_alternative<InsertStmt>(stmt)) return "insert";
  if (std::holds_alternative<DeleteStmt>(stmt)) return "delete";
  if (std::holds_alternative<UpdateStmt>(stmt)) return "update";
  if (std::holds_alternative<ExplainStmt>(stmt)) return "explain";
  return "other";
}

}  // namespace

Result<QueryResult> Database::Execute(std::string_view sql) {
  ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (reg.enabled()) {
    reg.Add("sql.statements", 1);
    reg.Add(std::string("sql.") + StatementKind(stmt), 1);
  }
  if (auto* s = std::get_if<SelectStmt>(&stmt)) return RunSelect(*s);
  if (auto* s = std::get_if<CreateTableStmt>(&stmt)) return RunCreateTable(*s);
  if (auto* s = std::get_if<CreateIndexStmt>(&stmt)) return RunCreateIndex(*s);
  if (auto* s = std::get_if<DropTableStmt>(&stmt)) return RunDropTable(*s);
  if (auto* s = std::get_if<InsertStmt>(&stmt)) return RunInsert(*s);
  if (auto* s = std::get_if<DeleteStmt>(&stmt)) return RunDelete(*s);
  if (auto* s = std::get_if<UpdateStmt>(&stmt)) return RunUpdate(*s);
  if (auto* s = std::get_if<ExplainStmt>(&stmt)) return RunExplain(*s);
  return Status::Internal("unhandled statement type");
}

Result<PlanPtr> Database::Plan(const SelectStmt& stmt) const {
  ReadLockSet locks;
  RETURN_IF_ERROR(LockTablesShared(stmt.from, &locks));
  return PlanWithLocks(stmt, locks);
}

Result<PlanPtr> Database::PlanSql(std::string_view select_sql) const {
  ASSIGN_OR_RETURN(Statement stmt, ParseSql(select_sql));
  auto* s = std::get_if<SelectStmt>(&stmt);
  if (s == nullptr) return Status::InvalidArgument("expected a SELECT");
  return Plan(*s);
}

Result<QueryResult> Database::RunSelect(const SelectStmt& stmt) {
  ReadLockSet locks;
  RETURN_IF_ERROR(LockTablesShared(stmt.from, &locks));
  ASSIGN_OR_RETURN(PlanPtr plan, PlanWithLocks(stmt, locks));
  QueryResult out;
  out.schema = plan->output_schema();
  ASSIGN_OR_RETURN(out.rows, ExecutePlan(plan.get()));
  FlushPlanMetrics(*plan);
  return out;
}

Result<QueryResult> Database::RunExplain(const ExplainStmt& stmt) {
  ReadLockSet locks;
  RETURN_IF_ERROR(LockTablesShared(stmt.select->from, &locks));
  ASSIGN_OR_RETURN(PlanPtr plan, PlanWithLocks(*stmt.select, locks));
  QueryResult out;
  if (stmt.analyze) {
    plan->EnableAnalyze();
    ASSIGN_OR_RETURN(std::vector<Row> rows, ExecutePlan(plan.get()));
    FlushPlanMetrics(*plan);
    out.affected = static_cast<int64_t>(rows.size());
    out.plan_text = plan->ExplainAnalyze();
  } else {
    out.plan_text = plan->Explain();
  }
  return out;
}

Result<QueryResult> Database::RunCreateTable(const CreateTableStmt& stmt) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ASSIGN_OR_RETURN([[maybe_unused]] Table* t,
                   CreateTableLocked(stmt.name, Schema(stmt.columns)));
  return QueryResult{};
}

Result<QueryResult> Database::RunCreateIndex(const CreateIndexStmt& stmt) {
  Table* t = nullptr;
  std::unique_lock<std::shared_mutex> lock;
  RETURN_IF_ERROR(LockTableExclusive(stmt.table, &t, &lock));
  RETURN_IF_ERROR(t->CreateIndexUnlocked(stmt.index, stmt.columns));
  return QueryResult{};
}

Result<QueryResult> Database::RunDropTable(const DropTableStmt& stmt) {
  Status st = DropTable(stmt.name);
  if (!st.ok() && stmt.if_exists && st.code() == StatusCode::kNotFound) {
    return QueryResult{};
  }
  RETURN_IF_ERROR(st);
  return QueryResult{};
}

Result<QueryResult> Database::RunInsert(const InsertStmt& stmt) {
  Table* t = nullptr;
  std::unique_lock<std::shared_mutex> lock;
  RETURN_IF_ERROR(LockTableExclusive(stmt.table, &t, &lock));
  QueryResult out;
  Row empty;
  for (const auto& exprs : stmt.rows) {
    Row row;
    row.reserve(exprs.size());
    for (const auto& e : exprs) {
      // VALUES expressions are constant: evaluate against an empty row.
      // (Column references would fail Bind and are rejected here.)
      ExprPtr c = e->Clone();
      Schema no_schema;
      RETURN_IF_ERROR(c->Bind(no_schema));
      ASSIGN_OR_RETURN(Value v, c->Eval(empty));
      row.push_back(std::move(v));
    }
    ASSIGN_OR_RETURN([[maybe_unused]] RowId rid,
                     t->InsertUnlocked(std::move(row)));
    ++out.affected;
  }
  return out;
}

Result<QueryResult> Database::RunDelete(const DeleteStmt& stmt) {
  Table* t = nullptr;
  std::unique_lock<std::shared_mutex> lock;
  RETURN_IF_ERROR(LockTableExclusive(stmt.table, &t, &lock));
  ExprPtr pred;
  if (stmt.where != nullptr) {
    pred = stmt.where->Clone();
    RETURN_IF_ERROR(pred->Bind(t->schema().WithQualifier(t->name())));
  }
  std::vector<RowId> to_delete;
  for (RowId rid = 0; rid < t->num_slots(); ++rid) {
    if (!t->IsLive(rid)) continue;
    if (pred != nullptr) {
      ASSIGN_OR_RETURN(bool pass, pred->EvalBool(t->row(rid)));
      if (!pass) continue;
    }
    to_delete.push_back(rid);
  }
  for (RowId rid : to_delete) RETURN_IF_ERROR(t->DeleteUnlocked(rid));
  QueryResult out;
  out.affected = static_cast<int64_t>(to_delete.size());
  return out;
}

Result<QueryResult> Database::RunUpdate(const UpdateStmt& stmt) {
  Table* t = nullptr;
  std::unique_lock<std::shared_mutex> lock;
  RETURN_IF_ERROR(LockTableExclusive(stmt.table, &t, &lock));
  Schema bound_schema = t->schema().WithQualifier(t->name());
  ExprPtr pred;
  if (stmt.where != nullptr) {
    pred = stmt.where->Clone();
    RETURN_IF_ERROR(pred->Bind(bound_schema));
  }
  std::vector<std::pair<size_t, ExprPtr>> sets;
  for (const auto& [col, expr] : stmt.assignments) {
    ASSIGN_OR_RETURN(size_t idx, t->schema().IndexOf(col));
    ExprPtr e = expr->Clone();
    RETURN_IF_ERROR(e->Bind(bound_schema));
    sets.emplace_back(idx, std::move(e));
  }
  QueryResult out;
  for (RowId rid = 0; rid < t->num_slots(); ++rid) {
    if (!t->IsLive(rid)) continue;
    if (pred != nullptr) {
      ASSIGN_OR_RETURN(bool pass, pred->EvalBool(t->row(rid)));
      if (!pass) continue;
    }
    Row updated = t->row(rid);
    for (const auto& [idx, e] : sets) {
      ASSIGN_OR_RETURN(Value v, e->Eval(t->row(rid)));
      updated[idx] = std::move(v);
    }
    RETURN_IF_ERROR(t->UpdateUnlocked(rid, std::move(updated)));
    ++out.affected;
  }
  return out;
}

}  // namespace xmlrdb::rdb
