#include "rdb/database.h"

#include <sstream>

#include "common/metrics.h"
#include "rdb/sql_parser.h"

namespace xmlrdb::rdb {

std::string QueryResult::ToString() const {
  if (!plan_text.empty()) return plan_text;
  std::ostringstream os;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) os << " | ";
    os << schema.column(i).QualifiedName();
  }
  os << "\n";
  for (const Row& r : rows) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i > 0) os << " | ";
      os << r[i].ToString();
    }
    os << "\n";
  }
  os << "(" << rows.size() << " rows)";
  return os.str();
}

Database::Database()
    : planner_([this](const std::string& name) -> const Table* {
        return FindTable(name);
      }) {}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* out = table.get();
  tables_[name] = std::move(table);
  return out;
}

Status Database::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  tables_.erase(it);
  return Status::OK();
}

Table* Database::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

size_t Database::FootprintBytes() const {
  size_t total = 0;
  for (const auto& [_, t] : tables_) total += t->FootprintBytes();
  return total;
}

namespace {

const char* StatementKind(const Statement& stmt) {
  if (std::holds_alternative<SelectStmt>(stmt)) return "select";
  if (std::holds_alternative<CreateTableStmt>(stmt)) return "create_table";
  if (std::holds_alternative<CreateIndexStmt>(stmt)) return "create_index";
  if (std::holds_alternative<DropTableStmt>(stmt)) return "drop_table";
  if (std::holds_alternative<InsertStmt>(stmt)) return "insert";
  if (std::holds_alternative<DeleteStmt>(stmt)) return "delete";
  if (std::holds_alternative<UpdateStmt>(stmt)) return "update";
  if (std::holds_alternative<ExplainStmt>(stmt)) return "explain";
  return "other";
}

}  // namespace

Result<QueryResult> Database::Execute(std::string_view sql) {
  ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (reg.enabled()) {
    reg.Add("sql.statements", 1);
    reg.Add(std::string("sql.") + StatementKind(stmt), 1);
  }
  if (auto* s = std::get_if<SelectStmt>(&stmt)) return RunSelect(*s);
  if (auto* s = std::get_if<CreateTableStmt>(&stmt)) return RunCreateTable(*s);
  if (auto* s = std::get_if<CreateIndexStmt>(&stmt)) return RunCreateIndex(*s);
  if (auto* s = std::get_if<DropTableStmt>(&stmt)) return RunDropTable(*s);
  if (auto* s = std::get_if<InsertStmt>(&stmt)) return RunInsert(*s);
  if (auto* s = std::get_if<DeleteStmt>(&stmt)) return RunDelete(*s);
  if (auto* s = std::get_if<UpdateStmt>(&stmt)) return RunUpdate(*s);
  if (auto* s = std::get_if<ExplainStmt>(&stmt)) {
    ASSIGN_OR_RETURN(PlanPtr plan, Plan(*s->select));
    QueryResult out;
    if (s->analyze) {
      plan->EnableAnalyze();
      ASSIGN_OR_RETURN(std::vector<Row> rows, ExecutePlan(plan.get()));
      FlushPlanMetrics(*plan);
      out.affected = static_cast<int64_t>(rows.size());
      out.plan_text = plan->ExplainAnalyze();
    } else {
      out.plan_text = plan->Explain();
    }
    return out;
  }
  return Status::Internal("unhandled statement type");
}

Result<PlanPtr> Database::Plan(const SelectStmt& stmt) const {
  return planner_.PlanSelect(stmt);
}

Result<PlanPtr> Database::PlanSql(std::string_view select_sql) const {
  ASSIGN_OR_RETURN(Statement stmt, ParseSql(select_sql));
  auto* s = std::get_if<SelectStmt>(&stmt);
  if (s == nullptr) return Status::InvalidArgument("expected a SELECT");
  return Plan(*s);
}

Result<QueryResult> Database::RunSelect(const SelectStmt& stmt) {
  ASSIGN_OR_RETURN(PlanPtr plan, Plan(stmt));
  QueryResult out;
  out.schema = plan->output_schema();
  ASSIGN_OR_RETURN(out.rows, ExecutePlan(plan.get()));
  FlushPlanMetrics(*plan);
  return out;
}

Result<QueryResult> Database::RunCreateTable(const CreateTableStmt& stmt) {
  ASSIGN_OR_RETURN([[maybe_unused]] Table* t,
                   CreateTable(stmt.name, Schema(stmt.columns)));
  return QueryResult{};
}

Result<QueryResult> Database::RunCreateIndex(const CreateIndexStmt& stmt) {
  Table* t = FindTable(stmt.table);
  if (t == nullptr) return Status::NotFound("table '" + stmt.table + "'");
  RETURN_IF_ERROR(t->CreateIndex(stmt.index, stmt.columns));
  return QueryResult{};
}

Result<QueryResult> Database::RunDropTable(const DropTableStmt& stmt) {
  Status st = DropTable(stmt.name);
  if (!st.ok() && stmt.if_exists && st.code() == StatusCode::kNotFound) {
    return QueryResult{};
  }
  RETURN_IF_ERROR(st);
  return QueryResult{};
}

Result<QueryResult> Database::RunInsert(const InsertStmt& stmt) {
  Table* t = FindTable(stmt.table);
  if (t == nullptr) return Status::NotFound("table '" + stmt.table + "'");
  QueryResult out;
  Row empty;
  for (const auto& exprs : stmt.rows) {
    Row row;
    row.reserve(exprs.size());
    for (const auto& e : exprs) {
      // VALUES expressions are constant: evaluate against an empty row.
      // (Column references would fail Bind and are rejected here.)
      ExprPtr c = e->Clone();
      Schema no_schema;
      RETURN_IF_ERROR(c->Bind(no_schema));
      ASSIGN_OR_RETURN(Value v, c->Eval(empty));
      row.push_back(std::move(v));
    }
    ASSIGN_OR_RETURN([[maybe_unused]] RowId rid, t->Insert(std::move(row)));
    ++out.affected;
  }
  return out;
}

Result<QueryResult> Database::RunDelete(const DeleteStmt& stmt) {
  Table* t = FindTable(stmt.table);
  if (t == nullptr) return Status::NotFound("table '" + stmt.table + "'");
  ExprPtr pred;
  if (stmt.where != nullptr) {
    pred = stmt.where->Clone();
    RETURN_IF_ERROR(pred->Bind(t->schema().WithQualifier(t->name())));
  }
  std::vector<RowId> to_delete;
  for (RowId rid = 0; rid < t->num_slots(); ++rid) {
    if (!t->IsLive(rid)) continue;
    if (pred != nullptr) {
      ASSIGN_OR_RETURN(bool pass, pred->EvalBool(t->row(rid)));
      if (!pass) continue;
    }
    to_delete.push_back(rid);
  }
  for (RowId rid : to_delete) RETURN_IF_ERROR(t->Delete(rid));
  QueryResult out;
  out.affected = static_cast<int64_t>(to_delete.size());
  return out;
}

Result<QueryResult> Database::RunUpdate(const UpdateStmt& stmt) {
  Table* t = FindTable(stmt.table);
  if (t == nullptr) return Status::NotFound("table '" + stmt.table + "'");
  Schema bound_schema = t->schema().WithQualifier(t->name());
  ExprPtr pred;
  if (stmt.where != nullptr) {
    pred = stmt.where->Clone();
    RETURN_IF_ERROR(pred->Bind(bound_schema));
  }
  std::vector<std::pair<size_t, ExprPtr>> sets;
  for (const auto& [col, expr] : stmt.assignments) {
    ASSIGN_OR_RETURN(size_t idx, t->schema().IndexOf(col));
    ExprPtr e = expr->Clone();
    RETURN_IF_ERROR(e->Bind(bound_schema));
    sets.emplace_back(idx, std::move(e));
  }
  QueryResult out;
  for (RowId rid = 0; rid < t->num_slots(); ++rid) {
    if (!t->IsLive(rid)) continue;
    if (pred != nullptr) {
      ASSIGN_OR_RETURN(bool pass, pred->EvalBool(t->row(rid)));
      if (!pass) continue;
    }
    Row updated = t->row(rid);
    for (const auto& [idx, e] : sets) {
      ASSIGN_OR_RETURN(Value v, e->Eval(t->row(rid)));
      updated[idx] = std::move(v);
    }
    RETURN_IF_ERROR(t->Update(rid, std::move(updated)));
    ++out.affected;
  }
  return out;
}

}  // namespace xmlrdb::rdb
