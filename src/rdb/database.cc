#include "rdb/database.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "common/metrics.h"
#include "common/resource_tracker.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "rdb/sql_parser.h"
#include "rdb/wal.h"

namespace xmlrdb::rdb {

namespace {

ResourceGauge& StatementLogGauge() {
  static ResourceGauge& g =
      ResourceTracker::Global().GetGauge("statementlog.entries");
  return g;
}

bool SnapshotReadsFromEnv() {
  const char* v = std::getenv("XMLRDB_MVCC");
  if (v == nullptr) return true;
  const std::string s(v);
  return !(s == "off" || s == "OFF" || s == "0" || s == "false");
}

/// The innermost owning ReadSnapshot pin on this thread.
thread_local const ReadSnapshot* tls_pinned_snapshot = nullptr;

}  // namespace

Database::Database() { snapshot_reads_ = SnapshotReadsFromEnv(); }

Database::~Database() { StopVersionGc(); }

// ---------------------------------------------------------------------------
// ReadSnapshot: a thread-pinned multi-statement snapshot.

ReadSnapshot::ReadSnapshot(const Database* db) {
  if (db == nullptr || !db->snapshot_reads_enabled()) return;
  if (tls_pinned_snapshot != nullptr) return;  // nested: the outer pin wins
  snap_.emplace();
  lsn_ = snap_->lsn();
  base_version_ = db->base_schema_version();
  db_ = db;
  tls_pinned_snapshot = this;
}

ReadSnapshot::~ReadSnapshot() {
  if (db_ != nullptr) tls_pinned_snapshot = nullptr;
}

const ReadSnapshot* ReadSnapshot::Current() { return tls_pinned_snapshot; }

// ---------------------------------------------------------------------------
// Statement log.

StatementLog::~StatementLog() {
  std::lock_guard<std::mutex> lock(mu_);
  StatementLogGauge().Add(-static_cast<int64_t>(entries_.size()));
}

void StatementLog::Append(StatementLogEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  entry.seq = next_seq_++;
  entries_.push_back(std::move(entry));
  StatementLogGauge().Add(1);
  while (entries_.size() > capacity_) {
    entries_.pop_front();
    StatementLogGauge().Add(-1);
  }
}

std::vector<StatementLogEntry> StatementLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

size_t StatementLog::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void StatementLog::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  while (entries_.size() > capacity_) {
    entries_.pop_front();
    StatementLogGauge().Add(-1);
  }
}

int64_t StatementLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

void StatementLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  StatementLogGauge().Add(-static_cast<int64_t>(entries_.size()));
  entries_.clear();
}

std::string QueryResult::ToString() const {
  if (!plan_text.empty()) return plan_text;
  std::ostringstream os;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) os << " | ";
    os << schema.column(i).QualifiedName();
  }
  os << "\n";
  for (const Row& r : rows) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i > 0) os << " | ";
      os << r[i].ToString();
    }
    os << "\n";
  }
  os << "(" << rows.size() << " rows)";
  return os.str();
}

// ---------------------------------------------------------------------------
// Catalog (public methods lock internally; *Locked assume mu_ is held).

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return CreateTableLocked(name, std::move(schema));
}

Result<Table*> Database::CreateTableLocked(const std::string& name,
                                           Schema schema) {
  if (name.rfind("xmlrdb_", 0) == 0) {
    return Status::InvalidArgument(
        "table names beginning with 'xmlrdb_' are reserved for virtual "
        "tables");
  }
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  const bool transient = IsTransientTableName(name);
  const bool durable = wal_ != nullptr && !transient;
  // WAL before catalog: a table the log never heard of must not exist.
  if (durable) RETURN_IF_ERROR(wal_->LogCreateTable(name, schema));
  auto table = std::make_shared<Table>(name, std::move(schema));
  Table* out = table.get();
  // Transient scratch tables are thread-private: versioning them would only
  // add stamp/commit traffic to the XPath translator's hot loop.
  out->set_mvcc(!transient);
  out->set_self(table);
  if (durable) out->set_mutation_sink(wal_.get());
  tables_[name] = std::move(table);
  BumpSchemaVersion();
  if (!transient) BumpBaseSchemaVersion();
  return out;
}

Status Database::DropTable(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  if (wal_ != nullptr && !IsTransientTableName(name)) {
    RETURN_IF_ERROR(wal_->LogDropTable(name));
  }
  // Drain in-flight DML: a mutator acquired the table lock while holding the
  // catalog lock we now own exclusively, so once we can take the table lock
  // no writer remains and none can start. Snapshot readers take no table
  // lock — they keep the Table object alive through their catalog pins and
  // finish their scans against it after the erase.
  { std::unique_lock<std::shared_mutex> drain(it->second->mutex()); }
  tables_.erase(it);
  // Any cached plan may hold a pointer into the erased table; bumping the
  // version forces those plans to rebuild before their next execution.
  BumpSchemaVersion();
  if (!IsTransientTableName(name)) BumpBaseSchemaVersion();
  return Status::OK();
}

Table* Database::FindTable(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FindTableLocked(name);
}

const Table* Database::FindTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FindTableLocked(name);
}

Table* Database::FindTableLocked(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTableLocked(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

void Database::AttachDurability(Env* env, std::string dir,
                                std::unique_ptr<Wal> wal,
                                uint64_t next_checkpoint_seq) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  env_ = env;
  durable_dir_ = std::move(dir);
  wal_ = std::move(wal);
  checkpoint_seq_ = next_checkpoint_seq;
  for (auto& [name, table] : tables_) {
    if (!IsTransientTableName(name)) table->set_mutation_sink(wal_.get());
  }
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

size_t Database::FootprintBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [_, t] : tables_) total += t->FootprintBytes();
  return total;
}

// ---------------------------------------------------------------------------
// Version garbage collection.

TableGcStats Database::CollectVersionGarbage() {
  std::vector<std::shared_ptr<Table>> targets;
  {
    std::shared_lock<std::shared_mutex> catalog(mu_);
    for (const auto& [name, t] : tables_) {
      // Non-MVCC (scratch) tables carry no version garbage: updates are
      // in-place and Truncate frees their slots wholesale.
      if (t->mvcc_enabled()) targets.push_back(t);
    }
  }
  MvccEngine& engine = MvccEngine::Global();
  TableGcStats total;
  for (const auto& t : targets) {
    // Re-read the bounds per table: snapshots released while earlier tables
    // were collected let later tables trim further.
    TableGcStats s =
        t->CollectGarbage(engine.GcBound(), engine.ReclaimFloor());
    total.versions_freed += s.versions_freed;
    total.versions_reclaimed += s.versions_reclaimed;
    total.index_entries_removed += s.index_entries_removed;
    total.bytes_unlinked += s.bytes_unlinked;
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (reg.enabled() && total.versions_freed > 0) {
    reg.Add("mvcc.gc_versions_freed",
            static_cast<int64_t>(total.versions_freed));
  }
  return total;
}

void Database::StartVersionGc(int64_t interval_ms) {
  std::lock_guard<std::mutex> lock(gc_mu_);
  if (gc_thread_.joinable()) return;
  gc_stop_ = false;
  gc_thread_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(gc_mu_);
    while (!gc_stop_) {
      if (gc_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                          [this] { return gc_stop_; })) {
        break;
      }
      lock.unlock();
      CollectVersionGarbage();
      lock.lock();
    }
  });
}

void Database::StopVersionGc() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(gc_mu_);
    gc_stop_ = true;
    worker = std::move(gc_thread_);
  }
  gc_cv_.notify_all();
  if (worker.joinable()) worker.join();
}

// ---------------------------------------------------------------------------
// Statement-scope table resolution: snapshot pinning (MVCC) or shared locks
// (legacy mode).

struct Database::ReadLockSet {
  /// Distinct referenced tables, resolved under the catalog lock.
  std::map<std::string, const Table*> tables;
  /// Keep-alives for the catalog tables: a concurrent DROP TABLE erases the
  /// catalog entry but the objects (and their version chains) outlive the
  /// statement.
  std::vector<std::shared_ptr<const Table>> pins;
  /// Materialized virtual-table snapshots, alive for statement scope. They
  /// are statement-private, so they are never locked — and they must be
  /// declared before `locks` so every lock releases before any table dies.
  std::vector<std::unique_ptr<Table>> owned;
  /// Shared locks on the catalog tables in map (= ascending name) order.
  /// Empty in snapshot mode.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  /// Snapshot mode only: the statement's own snapshot registration (absent
  /// when reusing the thread's pinned ReadSnapshot), the read view, and its
  /// installation for the statement's plan nodes to capture.
  std::optional<MvccSnapshot> snapshot;
  MvccReadView view;
  std::optional<ScopedReadView> scoped;
  bool snapshot_mode = false;
  bool pinned = false;  ///< view.snapshot came from a ReadSnapshot pin
  /// base_schema_version observed after snapshot acquisition. If it moves
  /// before the plan is built, a freshly created index may lack entries for
  /// rows this snapshot can still see — the caller re-acquires and replans
  /// (or fails with kTxnError under a multi-statement pin).
  int64_t base_at_acquire = 0;
};

Status Database::LockTablesShared(const std::vector<TableRef>& from,
                                  ReadLockSet* out, int64_t* lock_wait_us,
                                  bool force_locks) const {
  Stopwatch wait;
  std::shared_lock<std::shared_mutex> catalog(mu_);
  std::set<const Table*> ephemeral;
  for (const TableRef& ref : from) {
    if (out->tables.count(ref.table) > 0) continue;
    const Table* t = nullptr;
    auto it = tables_.find(ref.table);
    if (it != tables_.end()) {
      t = it->second.get();
      out->pins.push_back(it->second);
    } else if (IsVirtualTableName(ref.table)) {
      std::unique_ptr<Table> snapshot = MaterializeVirtualTable(ref.table);
      t = snapshot.get();
      ephemeral.insert(t);
      out->owned.push_back(std::move(snapshot));
    }
    if (t == nullptr) return Status::NotFound("table '" + ref.table + "'");
    out->tables.emplace(ref.table, t);
  }
  if (snapshot_reads_ && !force_locks) {
    // MVCC read path: no table locks. Reuse the thread's pinned snapshot if
    // one is open (multi-statement consistency), else register a fresh one
    // at the current visible LSN. An open transaction's own provisional
    // stamps stay visible to its statements (read-your-own-writes).
    out->snapshot_mode = true;
    const ReadSnapshot* pin = ReadSnapshot::Current();
    if (pin != nullptr && pin->db_ == this) {
      if (pin->base_version_ != base_schema_version()) {
        return Status::TxnError(
            "schema changed under the open read snapshot (base-table DDL "
            "committed after the snapshot was acquired); re-acquire the "
            "snapshot and retry");
      }
      out->pinned = true;
      out->view.snapshot = pin->lsn();
    } else {
      out->snapshot.emplace();
      out->view.snapshot = out->snapshot->lsn();
    }
    out->base_at_acquire = base_schema_version();
    out->view.own_txn = MvccTransaction::CurrentTxnId();
    out->scoped.emplace(out->view);
  } else {
    out->locks.reserve(out->tables.size());
    for (const auto& [name, t] : out->tables) {
      // Virtual-table snapshots are statement-private: no lock needed (or
      // wanted — their mutexes die with the statement).
      if (ephemeral.count(t) > 0) continue;
      out->locks.emplace_back(t->mutex());
    }
  }
  if (lock_wait_us != nullptr) {
    *lock_wait_us += static_cast<int64_t>(wait.ElapsedMicros());
  }
  return Status::OK();
}

/// Post-planning snapshot check (see ReadLockSet::base_at_acquire). Sets
/// *retry when the statement should re-resolve and replan.
Status Database::RevalidateSnapshot(const ReadLockSet& locks,
                                    bool* retry) const {
  *retry = false;
  if (!locks.snapshot_mode) return Status::OK();
  if (base_schema_version() == locks.base_at_acquire) return Status::OK();
  if (locks.pinned) {
    return Status::TxnError(
        "schema changed under the open read snapshot while planning; "
        "re-acquire the snapshot and retry");
  }
  *retry = true;
  return Status::OK();
}

Status Database::LockTableExclusive(const std::string& name, Table** table,
                                    std::shared_ptr<Table>* pin,
                                    std::unique_lock<std::shared_mutex>* lock,
                                    int64_t* lock_wait_us) {
  if (IsVirtualTableName(name)) {
    return Status::InvalidArgument("virtual table '" + name +
                                   "' is read-only");
  }
  Stopwatch wait;
  std::shared_lock<std::shared_mutex> catalog(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  *table = it->second.get();
  *pin = it->second;
  *lock = std::unique_lock<std::shared_mutex>((*table)->mutex());
  if (lock_wait_us != nullptr) {
    *lock_wait_us += static_cast<int64_t>(wait.ElapsedMicros());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Virtual tables: read-only snapshots of live engine state, materialized at
// statement-lock time (under the shared catalog lock) and scanned through
// the normal planner like any base table.

bool Database::IsVirtualTableName(const std::string& name) {
  return name == "xmlrdb_metrics" || name == "xmlrdb_statements" ||
         name == "xmlrdb_tables" || name == "xmlrdb_sessions" ||
         name == "xmlrdb_resources" || name == "xmlrdb_shards";
}

namespace {

Column MakeColumn(const char* name, DataType type) {
  Column c;
  c.name = name;
  c.type = type;
  return c;
}

}  // namespace

std::unique_ptr<Table> Database::MaterializeVirtualTable(
    const std::string& name) const {
  std::vector<Row> rows;
  Schema schema;
  if (name == "xmlrdb_metrics") {
    schema = Schema({MakeColumn("name", DataType::kString),
                     MakeColumn("value", DataType::kInt)});
    MetricsRegistry& reg = MetricsRegistry::Global();
    for (const auto& [counter, value] : reg.Snapshot()) {
      rows.push_back({Value(counter), Value(value)});
    }
    for (const auto& [hist, snap] : reg.HistogramSnapshots()) {
      rows.push_back({Value(hist + ".count"), Value(snap.count)});
      rows.push_back(
          {Value(hist + ".p50"),
           Value(static_cast<int64_t>(std::llround(snap.p50())))});
      rows.push_back(
          {Value(hist + ".p95"),
           Value(static_cast<int64_t>(std::llround(snap.p95())))});
      rows.push_back(
          {Value(hist + ".p99"),
           Value(static_cast<int64_t>(std::llround(snap.p99())))});
      rows.push_back({Value(hist + ".max"), Value(snap.max)});
    }
  } else if (name == "xmlrdb_statements") {
    schema = Schema({MakeColumn("seq", DataType::kInt),
                     MakeColumn("kind", DataType::kString),
                     MakeColumn("sql", DataType::kString),
                     MakeColumn("duration_us", DataType::kInt),
                     MakeColumn("lock_wait_us", DataType::kInt),
                     MakeColumn("rows", DataType::kInt),
                     MakeColumn("slow", DataType::kInt),
                     MakeColumn("cache_hit", DataType::kInt),
                     MakeColumn("request_id", DataType::kInt),
                     MakeColumn("plan", DataType::kString)});
    for (const StatementLogEntry& e : statement_log_.Entries()) {
      rows.push_back({Value(e.seq), Value(e.kind), Value(e.sql),
                      Value(e.duration_us), Value(e.lock_wait_us),
                      Value(e.rows), Value(static_cast<int64_t>(e.slow ? 1 : 0)),
                      Value(static_cast<int64_t>(e.cache_hit ? 1 : 0)),
                      Value(e.request_id), Value(e.plan)});
    }
  } else if (name == "xmlrdb_resources") {
    schema = Schema({MakeColumn("name", DataType::kString),
                     MakeColumn("value", DataType::kInt)});
    for (const auto& [gauge, value] : ResourceTracker::Global().Snapshot()) {
      rows.push_back({Value(gauge), Value(value)});
    }
  } else if (name == "xmlrdb_tables") {
    schema = Schema({MakeColumn("name", DataType::kString),
                     MakeColumn("rows", DataType::kInt),
                     MakeColumn("bytes", DataType::kInt),
                     MakeColumn("indexes", DataType::kInt)});
    // Called under the shared catalog lock: iterate tables_ directly. Row
    // and index counts read under each table's shared lock (same
    // catalog-then-table order every statement uses).
    for (const auto& [table_name, t] : tables_) {
      size_t live = 0;
      size_t num_indexes = 0;
      {
        std::shared_lock<std::shared_mutex> table_lock(t->mutex());
        live = t->num_rows();
        num_indexes = t->indexes().size();
      }
      rows.push_back({Value(table_name), Value(static_cast<int64_t>(live)),
                      Value(static_cast<int64_t>(t->FootprintBytes())),
                      Value(static_cast<int64_t>(num_indexes))});
    }
  } else if (name == "xmlrdb_sessions") {
    schema = Schema({MakeColumn("id", DataType::kInt),
                     MakeColumn("peer", DataType::kString),
                     MakeColumn("state", DataType::kString),
                     MakeColumn("age_us", DataType::kInt),
                     MakeColumn("statements", DataType::kInt),
                     MakeColumn("pending", DataType::kInt),
                     MakeColumn("busy_rejected", DataType::kInt),
                     MakeColumn("prepared_statements", DataType::kInt)});
    std::function<std::vector<SessionInfo>()> provider;
    {
      std::lock_guard<std::mutex> lock(session_provider_mu_);
      provider = session_provider_;
    }
    if (provider) {
      for (const SessionInfo& s : provider()) {
        rows.push_back({Value(s.id), Value(s.peer), Value(s.state),
                        Value(s.age_us), Value(s.statements),
                        Value(s.pending), Value(s.busy_rejected),
                        Value(s.prepared_statements)});
      }
    }
  } else if (name == "xmlrdb_shards") {
    schema = Schema({MakeColumn("shard", DataType::kInt),
                     MakeColumn("scope", DataType::kString),
                     MakeColumn("docs", DataType::kInt),
                     MakeColumn("requests", DataType::kInt),
                     MakeColumn("errors", DataType::kInt),
                     MakeColumn("plancache_hits", DataType::kInt),
                     MakeColumn("plancache_misses", DataType::kInt),
                     MakeColumn("footprint_bytes", DataType::kInt),
                     MakeColumn("version_bytes", DataType::kInt),
                     MakeColumn("dir", DataType::kString)});
    std::function<std::vector<ShardInfo>()> provider;
    {
      std::lock_guard<std::mutex> lock(session_provider_mu_);
      provider = shard_provider_;
    }
    if (provider) {
      for (const ShardInfo& s : provider()) {
        rows.push_back({Value(s.shard), Value(s.scope), Value(s.docs),
                        Value(s.requests), Value(s.errors),
                        Value(s.plancache_hits), Value(s.plancache_misses),
                        Value(s.footprint_bytes), Value(s.version_bytes),
                        Value(s.dir)});
      }
    }
  }
  // The snapshot is private until the statement's lock set publishes it to
  // the planner, so fill it without touching its mutex: acquiring it here
  // would thread the ephemeral table into the lock-order graph for nothing.
  // It is also statement-private state, not shared data — no versioning.
  auto table = std::make_unique<Table>(name, std::move(schema));
  table->set_mvcc(false);
  for (Row& r : rows) {
    auto inserted = table->InsertUnlocked(std::move(r));
    (void)inserted;
  }
  return table;
}

Result<PlanPtr> Database::PlanWithLocks(const SelectStmt& stmt,
                                        const ReadLockSet& locks) const {
  Planner planner(
      [&locks](const std::string& name) -> const Table* {
        auto it = locks.tables.find(name);
        return it == locks.tables.end() ? nullptr : it->second;
      },
      planner_options_);
  return planner.PlanSelect(stmt);
}

// ---------------------------------------------------------------------------
// SQL entry points.

namespace {

const char* StatementKind(const Statement& stmt) {
  if (std::holds_alternative<SelectStmt>(stmt)) return "select";
  if (std::holds_alternative<CreateTableStmt>(stmt)) return "create_table";
  if (std::holds_alternative<CreateIndexStmt>(stmt)) return "create_index";
  if (std::holds_alternative<DropTableStmt>(stmt)) return "drop_table";
  if (std::holds_alternative<InsertStmt>(stmt)) return "insert";
  if (std::holds_alternative<DeleteStmt>(stmt)) return "delete";
  if (std::holds_alternative<UpdateStmt>(stmt)) return "update";
  if (std::holds_alternative<ExplainStmt>(stmt)) return "explain";
  return "other";
}

}  // namespace

Result<QueryResult> Database::Execute(std::string_view sql) {
  ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  const char* kind = StatementKind(stmt);
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (reg.enabled()) {
    reg.Add("sql.statements", 1);
    reg.Add("sql.parsed", 1);
    reg.Add(std::string("sql.") + kind, 1);
  }
  StatementExec exec;
  Stopwatch timer;
  Result<QueryResult> result = QueryResult{};
  {
    // The statement span: everything the statement does — planning, morsel
    // workers on pool threads, nested scratch statements — nests under it.
    ScopedSpan span(std::string("sql.") + kind, "sql");
    result = Dispatch(stmt, &exec);
  }
  const int64_t duration_us = static_cast<int64_t>(timer.ElapsedMicros());
  if (reg.enabled()) {
    reg.RecordLatency(std::string("sql.") + kind + ".latency_us", duration_us);
    // Always record (zeros included): the lock-wait distribution is the
    // point — under MVCC a read-heavy mix should show a p95 of ~0.
    reg.RecordLatency("stmt.lock_wait_us", exec.lock_wait_us);
    reg.RecordLatency(std::string("stmt.") + kind + ".lock_wait_us",
                      exec.lock_wait_us);
    if (exec.lock_wait_us > 0) reg.Add("sql.lock_wait_us", exec.lock_wait_us);
  }
  const int64_t threshold = slow_query_threshold_us();
  const bool slow = threshold >= 0 && duration_us >= threshold;
  if (slow && reg.enabled()) reg.Add("sql.slow_statements", 1);
  if (statement_log_.capacity() > 0) {
    StatementLogEntry entry;
    entry.sql = std::string(sql);
    entry.kind = kind;
    entry.duration_us = duration_us;
    entry.lock_wait_us = exec.lock_wait_us;
    if (!result.ok()) {
      entry.rows = -1;
    } else if (!result.value().rows.empty()) {
      entry.rows = static_cast<int64_t>(result.value().rows.size());
    } else {
      entry.rows = result.value().affected;
    }
    entry.slow = slow;
    entry.request_id = static_cast<int64_t>(trace::CurrentRequestId());
    if (slow) entry.plan = std::move(exec.analyzed_plan);
    statement_log_.Append(std::move(entry));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Prepared statements.

namespace {

/// SELECTs over xmlrdb_* virtual tables are materialized per statement, so
/// their plans reference statement-private snapshot tables and must never be
/// cached across executions.
bool ReferencesVirtualTable(const SelectStmt& stmt) {
  for (const TableRef& ref : stmt.from) {
    if (Database::IsVirtualTableName(ref.table)) return true;
  }
  return false;
}

}  // namespace

Result<PreparedStatement> Database::Prepare(std::string_view sql) {
  std::string key(sql);
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (std::shared_ptr<PlanCacheEntry> entry = plan_cache_.Lookup(key)) {
    if (reg.enabled()) reg.Add("plancache.hits", 1);
    return PreparedStatement(this, std::move(entry));
  }
  if (reg.enabled()) {
    reg.Add("plancache.misses", 1);
    reg.Add("sql.parsed", 1);
  }
  ASSIGN_OR_RETURN(ParsedStatement parsed, ParseSqlWithParams(sql));
  auto entry = std::make_shared<PlanCacheEntry>();
  entry->sql = std::move(key);
  entry->kind = StatementKind(parsed.stmt);
  if (auto* s = std::get_if<SelectStmt>(&parsed.stmt)) {
    entry->cache_plan = !ReferencesVirtualTable(*s);
  }
  entry->parsed = std::move(parsed);
  entry = plan_cache_.Insert(std::move(entry));
  return PreparedStatement(this, std::move(entry));
}

Result<QueryResult> PreparedStatement::Execute(std::vector<Value> params) {
  if (db_ == nullptr) return Status::Internal("empty PreparedStatement");
  return db_->ExecutePrepared(entry_.get(), std::move(params));
}

Result<std::string> PreparedStatement::ExplainPlan() {
  if (db_ == nullptr) return Status::Internal("empty PreparedStatement");
  return db_->ExplainPrepared(entry_.get());
}

Result<QueryResult> Database::ExecutePrepared(PlanCacheEntry* entry,
                                              std::vector<Value> params) {
  if (params.size() != entry->parsed.param_count) {
    return Status::InvalidArgument(
        "statement takes " + std::to_string(entry->parsed.param_count) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (reg.enabled()) {
    reg.Add("sql.statements", 1);
    reg.Add("sql." + entry->kind, 1);
  }
  StatementExec exec;
  Stopwatch timer;
  bool cache_hit = false;
  Result<QueryResult> result = QueryResult{};
  {
    ScopedSpan span("sql." + entry->kind, "sql");
    std::unique_lock<std::mutex> checkout(entry->exec_mu, std::try_to_lock);
    if (checkout.owns_lock()) {
      if (entry->parsed.params != nullptr) {
        *entry->parsed.params = std::move(params);
      }
      if (entry->cache_plan) {
        result = RunSelectPrepared(entry, &exec, &cache_hit);
      } else {
        result = Dispatch(entry->parsed.stmt, &exec);
      }
    } else {
      // Another thread is executing this exact statement right now. Rather
      // than serialize behind it (the AST, param block and plan are all
      // single-checkout state), fall back to a fresh uncached parse+plan.
      if (reg.enabled()) reg.Add("sql.parsed", 1);
      auto parsed_or = ParseSqlWithParams(entry->sql);
      if (!parsed_or.ok()) {
        result = parsed_or.status();
      } else {
        ParsedStatement fresh = std::move(parsed_or.value());
        if (fresh.params != nullptr) *fresh.params = std::move(params);
        result = Dispatch(fresh.stmt, &exec);
      }
    }
  }
  const int64_t duration_us = static_cast<int64_t>(timer.ElapsedMicros());
  if (reg.enabled()) {
    reg.RecordLatency("sql." + entry->kind + ".latency_us", duration_us);
    reg.RecordLatency("stmt.lock_wait_us", exec.lock_wait_us);
    reg.RecordLatency("stmt." + entry->kind + ".lock_wait_us",
                      exec.lock_wait_us);
    if (exec.lock_wait_us > 0) reg.Add("sql.lock_wait_us", exec.lock_wait_us);
  }
  const int64_t threshold = slow_query_threshold_us();
  const bool slow = threshold >= 0 && duration_us >= threshold;
  if (slow && reg.enabled()) reg.Add("sql.slow_statements", 1);
  if (statement_log_.capacity() > 0) {
    StatementLogEntry log_entry;
    log_entry.sql = entry->sql;
    log_entry.kind = entry->kind;
    log_entry.duration_us = duration_us;
    log_entry.lock_wait_us = exec.lock_wait_us;
    if (!result.ok()) {
      log_entry.rows = -1;
    } else if (!result.value().rows.empty()) {
      log_entry.rows = static_cast<int64_t>(result.value().rows.size());
    } else {
      log_entry.rows = result.value().affected;
    }
    log_entry.slow = slow;
    log_entry.cache_hit = cache_hit;
    log_entry.request_id = static_cast<int64_t>(trace::CurrentRequestId());
    if (slow) log_entry.plan = std::move(exec.analyzed_plan);
    statement_log_.Append(std::move(log_entry));
  }
  return result;
}

Result<QueryResult> Database::RunSelectPrepared(PlanCacheEntry* entry,
                                                StatementExec* exec,
                                                bool* cache_hit) {
  const SelectStmt& stmt = std::get<SelectStmt>(entry->parsed.stmt);
  for (int attempt = 0;; ++attempt) {
    *cache_hit = false;
    ReadLockSet locks;
    RETURN_IF_ERROR(LockTablesShared(stmt.from, &locks,
                                     exec != nullptr ? &exec->lock_wait_us
                                                     : nullptr,
                                     /*force_locks=*/attempt >= 2));
    // Validate the cached plan against the catalog generation: version
    // equality proves no DDL ran since planning, so every Table/Index
    // pointer baked into the plan names a table this statement has pinned
    // (and the pins keep the objects alive past any later DROP).
    const int64_t version = schema_version_.load(std::memory_order_acquire);
    if (entry->plan == nullptr || entry->planned_version != version) {
      if (entry->plan != nullptr) {
        plan_cache_.RecordInvalidation();
        MetricsRegistry& reg = MetricsRegistry::Global();
        if (reg.enabled()) reg.Add("plancache.invalidations", 1);
        entry->plan.reset();
      }
      ASSIGN_OR_RETURN(entry->plan, PlanWithLocks(stmt, locks));
      entry->planned_version = version;
    } else {
      *cache_hit = true;
      // Reuse: the per-statement consumers (FlushPlanMetrics, slow-query
      // EXPLAIN ANALYZE) expect stats for this execution only.
      entry->plan->ResetStats();
    }
    bool retry = false;
    Status revalidate = RevalidateSnapshot(locks, &retry);
    if (!revalidate.ok()) {
      // Stale multi-statement snapshot: the cached plan now disagrees with
      // the pinned state. Drop it so the retry (under a fresh snapshot)
      // replans instead of reusing a pointer into the changed catalog.
      entry->plan.reset();
      return revalidate;
    }
    if (retry) {
      entry->plan.reset();
      continue;
    }
    const bool capture_plan = slow_query_threshold_us() >= 0;
    if (capture_plan) entry->plan->EnableAnalyze();
    QueryResult out;
    out.schema = entry->plan->output_schema();
    auto rows_or = ExecutePlan(entry->plan.get());
    if (!rows_or.ok()) {
      // Don't trust a plan whose execution failed midway; rebuild next time.
      entry->plan.reset();
      return rows_or.status();
    }
    out.rows = std::move(rows_or.value());
    FlushPlanMetrics(*entry->plan);
    if (capture_plan && exec != nullptr) {
      exec->analyzed_plan = entry->plan->ExplainAnalyze();
    }
    return out;
  }
}

Result<std::string> Database::ExplainPrepared(PlanCacheEntry* entry) {
  auto* stmt = std::get_if<SelectStmt>(&entry->parsed.stmt);
  if (stmt == nullptr) {
    return Status::InvalidArgument("EXPLAIN requires a SELECT statement");
  }
  std::lock_guard<std::mutex> checkout(entry->exec_mu);
  ReadLockSet locks;
  RETURN_IF_ERROR(LockTablesShared(stmt->from, &locks));
  if (!entry->cache_plan) {
    ASSIGN_OR_RETURN(PlanPtr plan, PlanWithLocks(*stmt, locks));
    return plan->Explain();
  }
  const int64_t version = schema_version_.load(std::memory_order_acquire);
  if (entry->plan == nullptr || entry->planned_version != version) {
    if (entry->plan != nullptr) {
      plan_cache_.RecordInvalidation();
      entry->plan.reset();
    }
    ASSIGN_OR_RETURN(entry->plan, PlanWithLocks(*stmt, locks));
    entry->planned_version = version;
  }
  return entry->plan->Explain();
}

Result<QueryResult> Database::Dispatch(const Statement& stmt,
                                       StatementExec* exec) {
  if (auto* s = std::get_if<SelectStmt>(&stmt)) return RunSelect(*s, exec);
  if (auto* s = std::get_if<CreateTableStmt>(&stmt)) return RunCreateTable(*s);
  if (auto* s = std::get_if<CreateIndexStmt>(&stmt)) {
    return RunCreateIndex(*s, exec);
  }
  if (auto* s = std::get_if<DropTableStmt>(&stmt)) return RunDropTable(*s);
  if (auto* s = std::get_if<InsertStmt>(&stmt)) return RunInsert(*s, exec);
  if (auto* s = std::get_if<DeleteStmt>(&stmt)) return RunDelete(*s, exec);
  if (auto* s = std::get_if<UpdateStmt>(&stmt)) return RunUpdate(*s, exec);
  if (auto* s = std::get_if<ExplainStmt>(&stmt)) return RunExplain(*s, exec);
  return Status::Internal("unhandled statement type");
}

Result<PlanPtr> Database::Plan(const SelectStmt& stmt) const {
  ReadLockSet locks;
  RETURN_IF_ERROR(LockTablesShared(stmt.from, &locks));
  return PlanWithLocks(stmt, locks);
}

Result<PlanPtr> Database::PlanSql(std::string_view select_sql) const {
  ASSIGN_OR_RETURN(Statement stmt, ParseSql(select_sql));
  auto* s = std::get_if<SelectStmt>(&stmt);
  if (s == nullptr) return Status::InvalidArgument("expected a SELECT");
  return Plan(*s);
}

Result<QueryResult> Database::RunSelect(const SelectStmt& stmt,
                                        StatementExec* exec) {
  // Attempt loop: a base-DDL commit racing the statement's fresh snapshot
  // forces a re-acquire + replan; the final attempt falls back to shared
  // table locks, which exclude DDL outright and always terminate.
  for (int attempt = 0;; ++attempt) {
    ReadLockSet locks;
    RETURN_IF_ERROR(LockTablesShared(stmt.from, &locks,
                                     exec != nullptr ? &exec->lock_wait_us
                                                     : nullptr,
                                     /*force_locks=*/attempt >= 2));
    ASSIGN_OR_RETURN(PlanPtr plan, PlanWithLocks(stmt, locks));
    bool retry = false;
    RETURN_IF_ERROR(RevalidateSnapshot(locks, &retry));
    if (retry) continue;
    // Slow-query tracking: pay for per-operator timing up front so an
    // offender can log the plan tree it actually ran with.
    const bool capture_plan = slow_query_threshold_us() >= 0;
    if (capture_plan) plan->EnableAnalyze();
    QueryResult out;
    out.schema = plan->output_schema();
    ASSIGN_OR_RETURN(out.rows, ExecutePlan(plan.get()));
    FlushPlanMetrics(*plan);
    if (capture_plan && exec != nullptr) {
      exec->analyzed_plan = plan->ExplainAnalyze();
    }
    return out;
  }
}

Result<QueryResult> Database::RunExplain(const ExplainStmt& stmt,
                                         StatementExec* exec) {
  for (int attempt = 0;; ++attempt) {
    ReadLockSet locks;
    RETURN_IF_ERROR(LockTablesShared(stmt.select->from, &locks,
                                     exec != nullptr ? &exec->lock_wait_us
                                                     : nullptr,
                                     /*force_locks=*/attempt >= 2));
    ASSIGN_OR_RETURN(PlanPtr plan, PlanWithLocks(*stmt.select, locks));
    bool retry = false;
    RETURN_IF_ERROR(RevalidateSnapshot(locks, &retry));
    if (retry) continue;
    QueryResult out;
    if (stmt.analyze) {
      plan->EnableAnalyze();
      ASSIGN_OR_RETURN(std::vector<Row> rows, ExecutePlan(plan.get()));
      FlushPlanMetrics(*plan);
      out.affected = static_cast<int64_t>(rows.size());
      out.plan_text = plan->ExplainAnalyze();
    } else {
      out.plan_text = plan->Explain();
    }
    return out;
  }
}

Result<QueryResult> Database::RunCreateTable(const CreateTableStmt& stmt) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ASSIGN_OR_RETURN([[maybe_unused]] Table* t,
                   CreateTableLocked(stmt.name, Schema(stmt.columns)));
  return QueryResult{};
}

Result<QueryResult> Database::RunCreateIndex(const CreateIndexStmt& stmt,
                                             StatementExec* exec) {
  Table* t = nullptr;
  std::shared_ptr<Table> pin;
  std::unique_lock<std::shared_mutex> lock;
  RETURN_IF_ERROR(LockTableExclusive(stmt.table, &t, &pin, &lock,
                                     exec != nullptr ? &exec->lock_wait_us
                                                     : nullptr));
  RETURN_IF_ERROR(t->CreateIndexUnlocked(stmt.index, stmt.columns));
  // Cached plans were costed without this index; invalidate so the next
  // prepared execution can switch its access path. The base bump also keeps
  // pre-DDL snapshots off the index — its backfill only covered the rows
  // live right now.
  BumpSchemaVersion();
  if (!IsTransientTableName(stmt.table)) BumpBaseSchemaVersion();
  return QueryResult{};
}

Result<QueryResult> Database::RunDropTable(const DropTableStmt& stmt) {
  Status st = DropTable(stmt.name);
  if (!st.ok() && stmt.if_exists && st.code() == StatusCode::kNotFound) {
    return QueryResult{};
  }
  RETURN_IF_ERROR(st);
  return QueryResult{};
}

Result<QueryResult> Database::RunInsert(const InsertStmt& stmt,
                                        StatementExec* exec) {
  Table* t = nullptr;
  std::shared_ptr<Table> pin;
  std::unique_lock<std::shared_mutex> lock;
  RETURN_IF_ERROR(LockTableExclusive(stmt.table, &t, &pin, &lock,
                                     exec != nullptr ? &exec->lock_wait_us
                                                     : nullptr));
  // One MVCC visibility unit: snapshots see the whole statement's rows at a
  // single commit LSN or none of them (a no-op inside an outer transaction).
  MvccTransaction txn;
  QueryResult out;
  Row empty;
  for (const auto& exprs : stmt.rows) {
    Row row;
    row.reserve(exprs.size());
    for (const auto& e : exprs) {
      // VALUES expressions are constant: evaluate against an empty row.
      // (Column references would fail Bind and are rejected here.)
      ExprPtr c = e->Clone();
      Schema no_schema;
      RETURN_IF_ERROR(c->Bind(no_schema));
      ASSIGN_OR_RETURN(Value v, c->Eval(empty));
      row.push_back(std::move(v));
    }
    ASSIGN_OR_RETURN([[maybe_unused]] RowId rid,
                     t->InsertUnlocked(std::move(row)));
    ++out.affected;
  }
  return out;
}

Result<QueryResult> Database::RunDelete(const DeleteStmt& stmt,
                                        StatementExec* exec) {
  Table* t = nullptr;
  std::shared_ptr<Table> pin;
  std::unique_lock<std::shared_mutex> lock;
  RETURN_IF_ERROR(LockTableExclusive(stmt.table, &t, &pin, &lock,
                                     exec != nullptr ? &exec->lock_wait_us
                                                     : nullptr));
  MvccTransaction txn;
  ExprPtr pred;
  if (stmt.where != nullptr) {
    pred = stmt.where->Clone();
    RETURN_IF_ERROR(pred->Bind(t->schema().WithQualifier(t->name())));
  }
  std::vector<RowId> to_delete;
  for (RowId rid = 0; rid < t->num_slots(); ++rid) {
    if (!t->IsLive(rid)) continue;
    if (pred != nullptr) {
      ASSIGN_OR_RETURN(bool pass, pred->EvalBool(t->row(rid)));
      if (!pass) continue;
    }
    to_delete.push_back(rid);
  }
  for (RowId rid : to_delete) RETURN_IF_ERROR(t->DeleteUnlocked(rid));
  QueryResult out;
  out.affected = static_cast<int64_t>(to_delete.size());
  return out;
}

Result<QueryResult> Database::RunUpdate(const UpdateStmt& stmt,
                                        StatementExec* exec) {
  Table* t = nullptr;
  std::shared_ptr<Table> pin;
  std::unique_lock<std::shared_mutex> lock;
  RETURN_IF_ERROR(LockTableExclusive(stmt.table, &t, &pin, &lock,
                                     exec != nullptr ? &exec->lock_wait_us
                                                     : nullptr));
  MvccTransaction txn;
  Schema bound_schema = t->schema().WithQualifier(t->name());
  ExprPtr pred;
  if (stmt.where != nullptr) {
    pred = stmt.where->Clone();
    RETURN_IF_ERROR(pred->Bind(bound_schema));
  }
  std::vector<std::pair<size_t, ExprPtr>> sets;
  for (const auto& [col, expr] : stmt.assignments) {
    ASSIGN_OR_RETURN(size_t idx, t->schema().IndexOf(col));
    ExprPtr e = expr->Clone();
    RETURN_IF_ERROR(e->Bind(bound_schema));
    sets.emplace_back(idx, std::move(e));
  }
  QueryResult out;
  for (RowId rid = 0; rid < t->num_slots(); ++rid) {
    if (!t->IsLive(rid)) continue;
    if (pred != nullptr) {
      ASSIGN_OR_RETURN(bool pass, pred->EvalBool(t->row(rid)));
      if (!pass) continue;
    }
    Row updated = t->row(rid);
    for (const auto& [idx, e] : sets) {
      ASSIGN_OR_RETURN(Value v, e->Eval(t->row(rid)));
      updated[idx] = std::move(v);
    }
    RETURN_IF_ERROR(t->UpdateUnlocked(rid, std::move(updated)));
    ++out.affected;
  }
  return out;
}

}  // namespace xmlrdb::rdb
