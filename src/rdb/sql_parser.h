// Recursive-descent parser: token stream -> Statement AST.

#ifndef XMLRDB_RDB_SQL_PARSER_H_
#define XMLRDB_RDB_SQL_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdb/sql_ast.h"
#include "rdb/value.h"

namespace xmlrdb::rdb {

/// Parses exactly one statement (a trailing ';' is allowed). Rejects `?`
/// placeholders — those require the prepared-statement path.
Result<Statement> ParseSql(std::string_view sql);

/// A statement parsed with positional-parameter support: every `?` became a
/// ParamExpr sharing `params` (sized to param_count, initially NULL). Writing
/// params->at(i) binds parameter i for every clone of the expression tree.
struct ParsedStatement {
  Statement stmt;
  std::shared_ptr<std::vector<Value>> params;
  size_t param_count = 0;
};

Result<ParsedStatement> ParseSqlWithParams(std::string_view sql);

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_SQL_PARSER_H_
