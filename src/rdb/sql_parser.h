// Recursive-descent parser: token stream -> Statement AST.

#ifndef XMLRDB_RDB_SQL_PARSER_H_
#define XMLRDB_RDB_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "rdb/sql_ast.h"

namespace xmlrdb::rdb {

/// Parses exactly one statement (a trailing ';' is allowed).
Result<Statement> ParseSql(std::string_view sql);

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_SQL_PARSER_H_
