#include "rdb/mvcc.h"

#include <algorithm>
#include <cassert>

namespace xmlrdb::rdb {

namespace {

thread_local MvccTransaction* tls_txn = nullptr;
thread_local uint64_t tls_txn_id = 0;
thread_local const MvccReadView* tls_view = nullptr;
thread_local Lsn tls_apply_lsn = 0;

}  // namespace

MvccEngine& MvccEngine::Global() {
  static MvccEngine* engine = new MvccEngine();
  return *engine;
}

void MvccEngine::EnsureNextAbove(Lsn lsn) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (next_ <= lsn) next_ = lsn + 1;
}

void MvccEngine::AdvanceVisibleTo(Lsn lsn) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (next_ <= lsn) next_ = lsn + 1;
  if (visible_.load(std::memory_order_relaxed) < lsn) {
    visible_.store(lsn, std::memory_order_release);
  }
}

Lsn MvccEngine::CommitStamps(
    const std::vector<std::atomic<uint64_t>*>& stamps) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  Lsn lsn = next_++;
  for (std::atomic<uint64_t>* s : stamps) {
    s->store(lsn, std::memory_order_release);
  }
  // Publish only after every stamp is final: a reader that acquires a
  // snapshot >= lsn is then guaranteed to see the committed stamps.
  visible_.store(lsn, std::memory_order_release);
  return lsn;
}

Lsn MvccEngine::AcquireSnapshot() {
  std::lock_guard<std::mutex> lock(snap_mu_);
  Lsn s = visible_.load(std::memory_order_acquire);
  ++active_[s];
  return s;
}

void MvccEngine::ReleaseSnapshot(Lsn snapshot) {
  std::lock_guard<std::mutex> lock(snap_mu_);
  auto it = active_.find(snapshot);
  assert(it != active_.end());
  if (it != active_.end() && --it->second == 0) active_.erase(it);
}

Lsn MvccEngine::GcBound() const {
  Lsn v = visible_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (active_.empty()) return v;
  return std::min(v, active_.begin()->first);
}

Lsn MvccEngine::ReclaimFloor() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return active_.empty() ? kLsnMax : active_.begin()->first;
}

size_t MvccEngine::ActiveSnapshots() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  size_t n = 0;
  for (const auto& [lsn, count] : active_) n += count;
  return n;
}

MvccTransaction::MvccTransaction() {
  if (tls_txn != nullptr) return;  // nested: outer scope owns the commit
  owner_ = true;
  txn_id_ = MvccEngine::Global().AllocateTxnId();
  tls_txn = this;
  tls_txn_id = txn_id_;
}

MvccTransaction::~MvccTransaction() {
  if (!owner_) return;
  if (!committed_) Commit();
  tls_txn = nullptr;
  tls_txn_id = 0;
}

Lsn MvccTransaction::Commit() {
  if (!owner_ || committed_) return 0;
  committed_ = true;
  if (stamps_.empty()) return 0;
  Lsn lsn = MvccEngine::Global().CommitStamps(stamps_);
  stamps_.clear();
  pins_.clear();
  return lsn;
}

uint64_t MvccTransaction::CurrentTxnId() { return tls_txn_id; }

void MvccTransaction::RecordStamp(std::atomic<uint64_t>* stamp) {
  assert(tls_txn != nullptr);
  tls_txn->stamps_.push_back(stamp);
}

void MvccTransaction::Pin(std::shared_ptr<const void> keep_alive) {
  assert(tls_txn != nullptr);
  if (keep_alive == nullptr) return;
  auto& pins = tls_txn->pins_;
  if (!pins.empty() && pins.back() == keep_alive) return;  // common case
  for (const auto& p : pins) {
    if (p == keep_alive) return;
  }
  pins.push_back(std::move(keep_alive));
}

ScopedReadView::ScopedReadView(MvccReadView view)
    : view_(view), prev_(tls_view) {
  tls_view = &view_;
}

ScopedReadView::~ScopedReadView() { tls_view = prev_; }

const MvccReadView* CurrentReadView() { return tls_view; }

MvccReadView EffectiveReadView() {
  if (tls_view != nullptr) return *tls_view;
  MvccReadView latest;
  latest.read_latest = true;
  latest.own_txn = tls_txn_id;
  return latest;
}

ScopedApplyLsn::ScopedApplyLsn(Lsn lsn) : prev_(tls_apply_lsn) {
  tls_apply_lsn = lsn;
  MvccEngine::Global().AdvanceVisibleTo(lsn);
}

ScopedApplyLsn::~ScopedApplyLsn() { tls_apply_lsn = prev_; }

Lsn ScopedApplyLsn::Current() { return tls_apply_lsn; }

}  // namespace xmlrdb::rdb
