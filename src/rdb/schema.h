// Relational schemas: ordered, (optionally qualified) named, typed columns.

#ifndef XMLRDB_RDB_SCHEMA_H_
#define XMLRDB_RDB_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdb/value.h"

namespace xmlrdb::rdb {

struct Column {
  std::string name;
  DataType type = DataType::kString;
  bool nullable = true;
  /// Table alias qualifier for intermediate schemas ("e1" in "e1.target").
  std::string qualifier;

  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Resolves "name" or "qualifier.name" to a column index.
  /// Unqualified lookups must be unambiguous across qualifiers.
  Result<size_t> IndexOf(const std::string& name) const;

  /// Like IndexOf but returns nullopt instead of an error.
  std::optional<size_t> TryIndexOf(const std::string& name) const;

  /// New schema with every column's qualifier replaced by `alias`.
  Schema WithQualifier(const std::string& alias) const;

  /// Concatenation (for join outputs).
  static Schema Concat(const Schema& left, const Schema& right);

  /// Validates that `row` arity and value types match (NULL always allowed
  /// when the column is nullable; INT accepted where DOUBLE expected).
  Status ValidateRow(const Row& row) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_SCHEMA_H_
