// Physical query plans: iterator (Volcano) and vectorized execution.
//
// Every operator exposes Open / Next / NextBatch / Close plus its output
// schema. Plans are single-use: Open once, drain with Next (row-at-a-time)
// or NextBatch (column-oriented batches of ~DefaultBatchSize() rows), Close.
// The planner (planner.h) builds these from SQL; the XPath translators may
// also build them directly.
//
// The batch path is the default executor (ExecutePlan consults
// DefaultExecMode()): scans emit column batches directly, Filter evaluates
// its predicate over a selection vector in a tight loop, and HashJoin
// computes hash keys column-wise. Operators that have not been ported run
// through a row-compat shim — the default NextBatchImpl fills a batch by
// calling NextImpl — so both paths always produce byte-identical results.
//
// Open/Next/NextBatch/Close are non-virtual wrappers on PlanNode that
// collect per-operator runtime statistics (rows and batches produced, call
// counts, and — when EnableAnalyze() has been called — wall time); operators
// implement the protected OpenImpl/NextImpl/NextBatchImpl/CloseImpl hooks.
// EXPLAIN ANALYZE renders the collected stats via ExplainAnalyze().

#ifndef XMLRDB_RDB_PLAN_H_
#define XMLRDB_RDB_PLAN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "rdb/batch.h"
#include "rdb/expr.h"
#include "rdb/schema.h"
#include "rdb/table.h"

namespace xmlrdb {
class ThreadPool;
}  // namespace xmlrdb

namespace xmlrdb::rdb {

/// Runtime statistics of one operator instance. Row/call counts are always
/// collected (increment-only, no clock reads); the *_ns timers are only
/// populated after EnableAnalyze().
struct OperatorStats {
  int64_t open_calls = 0;
  int64_t next_calls = 0;  ///< row-path Next() calls (shim calls included)
  int64_t batches = 0;     ///< batches produced (NextBatch() returning true)
  int64_t rows = 0;        ///< rows produced through either path
  int64_t open_ns = 0;     ///< wall time inside Open(), children inclusive
  int64_t next_ns = 0;     ///< wall time inside Next*/shim, children inclusive
};

class PlanNode {
 public:
  virtual ~PlanNode() = default;

  virtual const Schema& output_schema() const = 0;

  Status Open();
  /// Produces the next row into *out; returns false when exhausted.
  Result<bool> Next(Row* out);
  /// Produces the next batch into *out (at least one active row); returns
  /// false when exhausted. Do not interleave with Next() on the same plan.
  Result<bool> NextBatch(Batch* out);
  void Close();

  /// One-line operator description (EXPLAIN uses this).
  virtual std::string Describe() const = 0;
  virtual std::vector<const PlanNode*> Children() const { return {}; }

  /// Operator name: Describe() up to the first '(' ("SeqScan", "HashJoin"...).
  std::string OperatorName() const;

  /// Turns on wall-time collection for this subtree (EXPLAIN ANALYZE).
  void EnableAnalyze();
  bool analyze_enabled() const { return analyze_; }

  /// Zeroes the subtree's OperatorStats. Cached plans are re-executed; the
  /// per-statement consumers (FlushPlanMetrics, EXPLAIN ANALYZE) expect
  /// stats for the current execution only, so reset before each reuse.
  void ResetStats();

  const OperatorStats& stats() const { return stats_; }

  /// Multi-line indented plan tree.
  std::string Explain() const;
  /// Explain() annotated with actual row counts and (if analyzing) timings.
  std::string ExplainAnalyze() const;

  /// Count of operators of a given description prefix in this subtree —
  /// used by the join-count experiment (T6).
  int CountOperators(const std::string& prefix) const;

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(Row* out) = 0;
  /// Row-compat shim by default: fills *out with up to DefaultBatchSize()
  /// rows pulled through NextImpl. Vectorized operators override this.
  virtual Result<bool> NextBatchImpl(Batch* out);
  virtual void CloseImpl() = 0;

 private:
  bool analyze_ = false;
  OperatorStats stats_;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// Drains a plan into a row vector (Open .. Close). Uses the vectorized
/// NextBatch path when DefaultExecMode() is kBatch (the default), the
/// row-at-a-time Next path otherwise; results are byte-identical.
Result<std::vector<Row>> ExecutePlan(PlanNode* plan);

/// Publishes a finished plan's per-operator stats into the global
/// MetricsRegistry ("op.<Name>.rows", "exec.rows_scanned", ...). No-op while
/// the registry is disabled.
void FlushPlanMetrics(const PlanNode& plan);

// ---------------------------------------------------------------------------

/// Full scan of a base table. Emits the row versions visible to the read
/// view captured at Open() (newest live rows when no view is installed —
/// legacy lock mode and direct executor use).
class SeqScanNode : public PlanNode {
 public:
  SeqScanNode(const Table* table, std::string alias);

  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(Batch* out) override;
  void CloseImpl() override {}

 private:
  const Table* table_;
  std::string alias_;
  Schema schema_;
  RowId next_ = 0;
  MvccReadView view_;  ///< captured at Open
};

/// Morsel-parallel full table scan. Open() splits the slot range into
/// contiguous morsels dispatched across a thread pool; each worker clones and
/// binds the (optional) pushed-down predicate, then filters its morsel into a
/// private buffer. The buffers are concatenated in morsel order, so the
/// output is byte-identical to SeqScan + Filter. The statement's read view
/// is captured at Open() and copied into every worker — pool threads carry
/// no thread-local view of their own.
class ParallelSeqScanNode : public PlanNode {
 public:
  ParallelSeqScanNode(const Table* table, std::string alias, ExprPtr predicate,
                      int max_workers, ThreadPool* pool);

  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(Batch* out) override;
  void CloseImpl() override;

 private:
  const Table* table_;
  std::string alias_;
  Schema schema_;
  ExprPtr predicate_;  ///< unbound; each worker clones + binds its own copy
  int max_workers_;
  ThreadPool* pool_;  ///< null means ThreadPool::Shared()
  std::vector<Row> rows_;
  size_t pos_ = 0;
  MvccReadView view_;  ///< captured at Open, copied into the workers
};

/// Range scan through a secondary index. Bounds are prefix rows over the
/// index key columns; empty = unbounded on that side. The expression-bound
/// form defers bound evaluation to Open() so parameterized plans re-resolve
/// `?` values on every execution; a bound whose runtime type cannot be
/// compared against the key column truncates the prefix there (the planner
/// keeps parameterized conjuncts as residual filters, so widening is safe).
class IndexScanNode : public PlanNode {
 public:
  IndexScanNode(const Table* table, const Index* index, std::string alias,
                Row lower, bool lower_inclusive, Row upper, bool upper_inclusive);
  IndexScanNode(const Table* table, const Index* index, std::string alias,
                std::vector<ExprPtr> lower, bool lower_inclusive,
                std::vector<ExprPtr> upper, bool upper_inclusive);

  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(Batch* out) override;
  void CloseImpl() override;

 private:
  const Table* table_;
  const Index* index_;
  std::string alias_;
  Schema schema_;
  Row lower_, upper_;
  std::vector<ExprPtr> lower_exprs_, upper_exprs_;  ///< empty = fixed bounds
  bool lower_inclusive_, upper_inclusive_;
  /// Latest-state path: current row ids from the index (legacy lock mode).
  std::vector<RowId> rids_;
  /// Snapshot path: raw index entries (key columns + rid); lazily maintained
  /// entries are re-verified against the visible version's key, which both
  /// rejects stale entries and dedups rows reachable via old + new keys.
  const Row* VisibleEntryRow(const Row& entry) const;
  std::vector<Row> entries_;
  bool snapshot_scan_ = false;
  size_t pos_ = 0;
  MvccReadView view_;  ///< captured at Open
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanPtr child, ExprPtr predicate);

  const Schema& output_schema() const override { return child_->output_schema(); }
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(Batch* out) override;
  void CloseImpl() override { child_->Close(); }

 private:
  PlanPtr child_;
  ExprPtr predicate_;
};

class ProjectNode : public PlanNode {
 public:
  /// `names` supplies output column names (possibly from AS aliases).
  ProjectNode(PlanPtr child, std::vector<ExprPtr> exprs,
              std::vector<std::string> names);

  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(Batch* out) override;
  void CloseImpl() override { child_->Close(); }

 private:
  PlanPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
  Batch input_;  ///< batch pulled from the child, projected into *out
};

/// Nested-loop join with an arbitrary predicate (may be null = cross join).
/// The right side is materialised at Open.
class NestedLoopJoinNode : public PlanNode {
 public:
  NestedLoopJoinNode(PlanPtr left, PlanPtr right, ExprPtr predicate);

  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  PlanPtr left_, right_;
  ExprPtr predicate_;
  Schema schema_;
  std::vector<Row> right_rows_;
  Row left_row_;
  bool left_valid_ = false;
  size_t right_pos_ = 0;
};

/// Equi hash join: build on the right input, probe with the left.
/// `residual` (optional) is applied to the concatenated row.
/// Rows with a NULL in any join key never match (SQL equality semantics):
/// they are skipped on the build side and on the probe side.
class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanPtr left, PlanPtr right, std::vector<ExprPtr> left_keys,
               std::vector<ExprPtr> right_keys, ExprPtr residual);

  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(Batch* out) override;
  void CloseImpl() override;

 private:
  struct BuildEntry {
    Row key;
    Row row;
  };

  PlanPtr left_, right_;
  std::vector<ExprPtr> left_keys_, right_keys_;
  ExprPtr residual_;
  Schema schema_;
  std::unordered_multimap<size_t, BuildEntry> build_;
  Row probe_row_;
  std::vector<const Row*> matches_;
  size_t match_pos_ = 0;
  Batch probe_batch_;  ///< batch-path probe input
};

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

class SortNode : public PlanNode {
 public:
  SortNode(PlanPtr child, std::vector<SortKey> keys);

  const Schema& output_schema() const override { return child_->output_schema(); }
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  PlanPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

enum class AggFunc { kCount, kCountStar, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

struct AggSpec {
  AggFunc func;
  ExprPtr arg;  ///< null for COUNT(*)
  std::string output_name;
};

/// Hash aggregation. Output schema = group-by columns then aggregates.
class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanPtr child, std::vector<ExprPtr> group_by,
                std::vector<std::string> group_names, std::vector<AggSpec> aggs);

  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  PlanPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

class DistinctNode : public PlanNode {
 public:
  explicit DistinctNode(PlanPtr child);

  const Schema& output_schema() const override { return child_->output_schema(); }
  std::string Describe() const override { return "Distinct"; }
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(Batch* out) override;
  void CloseImpl() override;

 private:
  PlanPtr child_;
  std::unordered_multimap<size_t, Row> seen_rows_;
};

class LimitNode : public PlanNode {
 public:
  LimitNode(PlanPtr child, int64_t limit, int64_t offset);

  const Schema& output_schema() const override { return child_->output_schema(); }
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(Batch* out) override;
  void CloseImpl() override { child_->Close(); }

 private:
  PlanPtr child_;
  int64_t limit_, offset_;
  int64_t emitted_ = 0, skipped_ = 0;
};

/// Constant row source (INSERT ... VALUES, tests).
class ValuesNode : public PlanNode {
 public:
  ValuesNode(Schema schema, std::vector<Row> rows);

  const Schema& output_schema() const override { return schema_; }
  std::string Describe() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(Batch* out) override;
  void CloseImpl() override {}

 private:
  Schema schema_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_PLAN_H_
