// Physical query plans: the iterator (Volcano) execution model.
//
// Every operator exposes Open / Next / Close plus its output schema. Plans
// are single-use: Open once, drain with Next, Close. The planner (planner.h)
// builds these from SQL; the XPath translators may also build them directly.

#ifndef XMLRDB_RDB_PLAN_H_
#define XMLRDB_RDB_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "rdb/expr.h"
#include "rdb/schema.h"
#include "rdb/table.h"

namespace xmlrdb::rdb {

class PlanNode {
 public:
  virtual ~PlanNode() = default;

  virtual const Schema& output_schema() const = 0;
  virtual Status Open() = 0;
  /// Produces the next row into *out; returns false when exhausted.
  virtual Result<bool> Next(Row* out) = 0;
  virtual void Close() = 0;

  /// One-line operator description (EXPLAIN uses this).
  virtual std::string Describe() const = 0;
  virtual std::vector<const PlanNode*> Children() const { return {}; }

  /// Multi-line indented plan tree.
  std::string Explain() const;

  /// Count of operators of a given description prefix in this subtree —
  /// used by the join-count experiment (T6).
  int CountOperators(const std::string& prefix) const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// Drains a plan into a row vector (Open/Next/Close).
Result<std::vector<Row>> ExecutePlan(PlanNode* plan);

// ---------------------------------------------------------------------------

/// Full scan of a base table (skips tombstones).
class SeqScanNode : public PlanNode {
 public:
  SeqScanNode(const Table* table, std::string alias);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override {}
  std::string Describe() const override;

 private:
  const Table* table_;
  std::string alias_;
  Schema schema_;
  RowId next_ = 0;
};

/// Range scan through a secondary index. Bounds are prefix rows over the
/// index key columns; empty = unbounded on that side.
class IndexScanNode : public PlanNode {
 public:
  IndexScanNode(const Table* table, const Index* index, std::string alias,
                Row lower, bool lower_inclusive, Row upper, bool upper_inclusive);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override;
  std::string Describe() const override;

 private:
  const Table* table_;
  const Index* index_;
  std::string alias_;
  Schema schema_;
  Row lower_, upper_;
  bool lower_inclusive_, upper_inclusive_;
  std::vector<RowId> rids_;
  size_t pos_ = 0;
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanPtr child, ExprPtr predicate);

  const Schema& output_schema() const override { return child_->output_schema(); }
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override { child_->Close(); }
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 private:
  PlanPtr child_;
  ExprPtr predicate_;
};

class ProjectNode : public PlanNode {
 public:
  /// `names` supplies output column names (possibly from AS aliases).
  ProjectNode(PlanPtr child, std::vector<ExprPtr> exprs,
              std::vector<std::string> names);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override { child_->Close(); }
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 private:
  PlanPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
};

/// Nested-loop join with an arbitrary predicate (may be null = cross join).
/// The right side is materialised at Open.
class NestedLoopJoinNode : public PlanNode {
 public:
  NestedLoopJoinNode(PlanPtr left, PlanPtr right, ExprPtr predicate);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PlanPtr left_, right_;
  ExprPtr predicate_;
  Schema schema_;
  std::vector<Row> right_rows_;
  Row left_row_;
  bool left_valid_ = false;
  size_t right_pos_ = 0;
};

/// Equi hash join: build on the right input, probe with the left.
/// `residual` (optional) is applied to the concatenated row.
class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanPtr left, PlanPtr right, std::vector<ExprPtr> left_keys,
               std::vector<ExprPtr> right_keys, ExprPtr residual);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PlanPtr left_, right_;
  std::vector<ExprPtr> left_keys_, right_keys_;
  ExprPtr residual_;
  Schema schema_;
  std::unordered_multimap<size_t, Row> build_;
  Row probe_row_;
  std::vector<const Row*> matches_;
  size_t match_pos_ = 0;
};

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

class SortNode : public PlanNode {
 public:
  SortNode(PlanPtr child, std::vector<SortKey> keys);

  const Schema& output_schema() const override { return child_->output_schema(); }
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 private:
  PlanPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

enum class AggFunc { kCount, kCountStar, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

struct AggSpec {
  AggFunc func;
  ExprPtr arg;  ///< null for COUNT(*)
  std::string output_name;
};

/// Hash aggregation. Output schema = group-by columns then aggregates.
class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanPtr child, std::vector<ExprPtr> group_by,
                std::vector<std::string> group_names, std::vector<AggSpec> aggs);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override;
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 private:
  PlanPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

class DistinctNode : public PlanNode {
 public:
  explicit DistinctNode(PlanPtr child);

  const Schema& output_schema() const override { return child_->output_schema(); }
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override;
  std::string Describe() const override { return "Distinct"; }
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 private:
  PlanPtr child_;
  std::unordered_multimap<size_t, Row> seen_rows_;
};

class LimitNode : public PlanNode {
 public:
  LimitNode(PlanPtr child, int64_t limit, int64_t offset);

  const Schema& output_schema() const override { return child_->output_schema(); }
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override { child_->Close(); }
  std::string Describe() const override;
  std::vector<const PlanNode*> Children() const override { return {child_.get()}; }

 private:
  PlanPtr child_;
  int64_t limit_, offset_;
  int64_t emitted_ = 0, skipped_ = 0;
};

/// Constant row source (INSERT ... VALUES, tests).
class ValuesNode : public PlanNode {
 public:
  ValuesNode(Schema schema, std::vector<Row> rows);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(Row* out) override;
  void Close() override {}
  std::string Describe() const override;

 private:
  Schema schema_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_PLAN_H_
