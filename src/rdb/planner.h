// Query planner: SelectStmt AST -> physical plan.
//
// Optimizations performed:
//   * predicate pushdown — single-table conjuncts move below the joins
//   * index selection — equality-prefix (+ one range column) predicates use a
//     matching B+-tree index instead of a sequential scan
//   * join ordering — greedy smallest-estimate-first over the join graph
//   * hash joins for equi-join predicates, nested-loop otherwise
//   * aggregate extraction — AggCallExprs become an AggregateNode

#ifndef XMLRDB_RDB_PLANNER_H_
#define XMLRDB_RDB_PLANNER_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "rdb/plan.h"
#include "rdb/sql_ast.h"

namespace xmlrdb::rdb {

/// Catalog lookup callback: table name -> Table* (null if missing).
using TableResolver = std::function<const Table*(const std::string&)>;

class Planner {
 public:
  explicit Planner(TableResolver resolver) : resolver_(std::move(resolver)) {}

  /// Builds an executable plan for a SELECT statement.
  Result<PlanPtr> PlanSelect(const SelectStmt& stmt) const;

 private:
  TableResolver resolver_;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_PLANNER_H_
