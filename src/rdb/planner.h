// Query planner: SelectStmt AST -> physical plan.
//
// Optimizations performed:
//   * predicate pushdown — single-table conjuncts move below the joins
//   * index selection — equality-prefix (+ one range column) predicates use a
//     matching B+-tree index instead of a sequential scan
//   * join ordering — greedy smallest-estimate-first over the join graph
//   * hash joins for equi-join predicates, nested-loop otherwise
//   * aggregate extraction — AggCallExprs become an AggregateNode

#ifndef XMLRDB_RDB_PLANNER_H_
#define XMLRDB_RDB_PLANNER_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "rdb/plan.h"
#include "rdb/sql_ast.h"

namespace xmlrdb {
class ThreadPool;
}  // namespace xmlrdb

namespace xmlrdb::rdb {

/// Catalog lookup callback: table name -> Table* (null if missing).
using TableResolver = std::function<const Table*(const std::string&)>;

/// Planner knobs. Defaults preserve fully serial plans.
struct PlannerOptions {
  /// Upper bound on scan workers. 1 (default) keeps every scan serial.
  int max_parallelism = 1;
  /// Tables with fewer slots than this always scan serially — partitioning
  /// overhead beats the win on small inputs.
  size_t parallel_scan_min_rows = 4096;
  /// Pool used by parallel operators; null means ThreadPool::Shared().
  ThreadPool* pool = nullptr;
};

class Planner {
 public:
  explicit Planner(TableResolver resolver) : resolver_(std::move(resolver)) {}
  Planner(TableResolver resolver, PlannerOptions options)
      : resolver_(std::move(resolver)), options_(options) {}

  /// Builds an executable plan for a SELECT statement.
  Result<PlanPtr> PlanSelect(const SelectStmt& stmt) const;

 private:
  TableResolver resolver_;
  PlannerOptions options_;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_PLANNER_H_
