// Database: the catalog plus the SQL entry point.
//
// A Database owns named tables. Statements run through Execute(); SELECTs
// can also be planned without execution (Plan / Explain) — the plan-shape
// experiment (T6) uses that.
//
// Concurrency model (statement-level two-phase locking):
//   * The catalog map is guarded by a reader-writer mutex. Every statement
//     takes it shared just long enough to resolve its tables; CREATE TABLE /
//     DROP TABLE take it exclusively.
//   * SELECT and EXPLAIN then hold a shared lock on every referenced table
//     for the duration of the statement (in ascending name order), so many
//     queries scan the same tables concurrently.
//   * INSERT / DELETE / UPDATE / CREATE INDEX hold an exclusive lock on
//     their single target table for the duration of the statement, which
//     makes each DML statement atomic with respect to readers.
//   * DROP TABLE drains in-flight statements on the victim (acquire+release
//     its exclusive lock under the exclusive catalog lock) before erasing
//     it, so no scan ever dereferences a freed table.
// The public catalog methods (CreateTable, FindTable, ...) lock internally
// and are safe to call concurrently with Execute.

#ifndef XMLRDB_RDB_DATABASE_H_
#define XMLRDB_RDB_DATABASE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdb/plan.h"
#include "rdb/planner.h"
#include "rdb/sql_ast.h"
#include "rdb/table.h"

namespace xmlrdb::rdb {

/// Result of Execute(): rows for queries, affected count for DML/DDL.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  int64_t affected = 0;
  /// EXPLAIN output (empty otherwise).
  std::string plan_text;

  /// Pretty table rendering, for examples and debugging.
  std::string ToString() const;
};

class Database {
 public:
  Database() = default;

  // -- catalog --
  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Sum of table footprints (storage benchmark).
  size_t FootprintBytes() const;

  // -- SQL --
  /// Parses and executes one statement. Safe to call from many threads at
  /// once; see the locking model above.
  Result<QueryResult> Execute(std::string_view sql);

  /// Plans a SELECT without running it.
  Result<PlanPtr> Plan(const SelectStmt& stmt) const;
  Result<PlanPtr> PlanSql(std::string_view select_sql) const;

  /// Planner knobs (parallel scan fan-out, thresholds). Set before serving
  /// traffic: the options are read without synchronization while planning.
  void set_planner_options(const PlannerOptions& options) {
    planner_options_ = options;
  }
  const PlannerOptions& planner_options() const { return planner_options_; }

 private:
  /// The tables a SELECT references, each held shared for statement scope.
  struct ReadLockSet;

  /// Resolves `from` under the catalog lock, then locks every distinct table
  /// shared (ascending name order). The catalog lock is released on return.
  Status LockTablesShared(const std::vector<TableRef>& from,
                          ReadLockSet* out) const;
  /// Resolves `name` and locks that table exclusively for statement scope.
  Status LockTableExclusive(const std::string& name, Table** table,
                            std::unique_lock<std::shared_mutex>* lock);

  Result<Table*> CreateTableLocked(const std::string& name, Schema schema);
  const Table* FindTableLocked(const std::string& name) const;
  Table* FindTableLocked(const std::string& name);

  Result<PlanPtr> PlanWithLocks(const SelectStmt& stmt,
                                const ReadLockSet& locks) const;

  Result<QueryResult> RunSelect(const SelectStmt& stmt);
  Result<QueryResult> RunExplain(const ExplainStmt& stmt);
  Result<QueryResult> RunCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> RunCreateIndex(const CreateIndexStmt& stmt);
  Result<QueryResult> RunDropTable(const DropTableStmt& stmt);
  Result<QueryResult> RunInsert(const InsertStmt& stmt);
  Result<QueryResult> RunDelete(const DeleteStmt& stmt);
  Result<QueryResult> RunUpdate(const UpdateStmt& stmt);

  mutable std::shared_mutex mu_;  ///< guards tables_ (the catalog)
  std::map<std::string, std::unique_ptr<Table>> tables_;
  PlannerOptions planner_options_;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_DATABASE_H_
