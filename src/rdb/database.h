// Database: the catalog plus the SQL entry point.
//
// A Database owns named tables. Statements run through Execute(); SELECTs
// can also be planned without execution (Plan / Explain) — the plan-shape
// experiment (T6) uses that.

#ifndef XMLRDB_RDB_DATABASE_H_
#define XMLRDB_RDB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdb/plan.h"
#include "rdb/planner.h"
#include "rdb/sql_ast.h"
#include "rdb/table.h"

namespace xmlrdb::rdb {

/// Result of Execute(): rows for queries, affected count for DML/DDL.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  int64_t affected = 0;
  /// EXPLAIN output (empty otherwise).
  std::string plan_text;

  /// Pretty table rendering, for examples and debugging.
  std::string ToString() const;
};

class Database {
 public:
  Database();

  // -- catalog --
  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Sum of table footprints (storage benchmark).
  size_t FootprintBytes() const;

  // -- SQL --
  /// Parses and executes one statement.
  Result<QueryResult> Execute(std::string_view sql);

  /// Plans a SELECT without running it.
  Result<PlanPtr> Plan(const SelectStmt& stmt) const;
  Result<PlanPtr> PlanSql(std::string_view select_sql) const;

 private:
  Result<QueryResult> RunSelect(const SelectStmt& stmt);
  Result<QueryResult> RunCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> RunCreateIndex(const CreateIndexStmt& stmt);
  Result<QueryResult> RunDropTable(const DropTableStmt& stmt);
  Result<QueryResult> RunInsert(const InsertStmt& stmt);
  Result<QueryResult> RunDelete(const DeleteStmt& stmt);
  Result<QueryResult> RunUpdate(const UpdateStmt& stmt);

  std::map<std::string, std::unique_ptr<Table>> tables_;
  Planner planner_;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_DATABASE_H_
