// Database: the catalog plus the SQL entry point.
//
// A Database owns named tables. Statements run through Execute(); SELECTs
// can also be planned without execution (Plan / Explain) — the plan-shape
// experiment (T6) uses that.
//
// Concurrency model (MVCC snapshot reads over writer locks):
//   * The catalog map is guarded by a reader-writer mutex. Every statement
//     takes it shared just long enough to resolve (and pin) its tables;
//     CREATE TABLE / DROP TABLE take it exclusively.
//   * SELECT and EXPLAIN take NO table locks. Each read-only statement
//     acquires a snapshot LSN from the MVCC engine (rdb/mvcc.h) and scans
//     the row versions visible at that LSN, so readers never wait on
//     writers and writers never wait on readers. A multi-statement scope
//     can pin one snapshot across statements with rdb::ReadSnapshot; if
//     base-table DDL lands while such a snapshot is open, its statements
//     fail with kTxnError (re-acquire and retry).
//   * INSERT / DELETE / UPDATE / CREATE INDEX still hold an exclusive lock
//     on their single target table for the duration of the statement, so
//     DML conflicts only with DML; the statement's row versions become
//     visible to snapshots atomically at one commit LSN.
//   * DROP TABLE drains in-flight DML on the victim (acquire+release its
//     exclusive lock under the exclusive catalog lock) before erasing it;
//     in-flight readers keep the table alive through their catalog pins
//     (the catalog holds tables by shared_ptr).
//   * Version garbage: old row versions unreachable by every live snapshot
//     are reclaimed by CollectVersionGarbage() — run at checkpoint time and
//     optionally by a background thread (StartVersionGc).
//   * Setting XMLRDB_MVCC=off in the environment restores the previous
//     model (statement-scope shared table locks, latest-state reads).
// The public catalog methods (CreateTable, FindTable, ...) lock internally
// and are safe to call concurrently with Execute.
//
// Observability: every statement run through Execute() is timed (total and
// lock-wait) and appended to a bounded in-memory statement log. When a
// slow-query threshold is configured, SELECTs run with per-operator timing
// enabled and offenders keep their captured EXPLAIN ANALYZE tree in the log.
// Three read-only virtual tables expose engine state through the normal
// planner: xmlrdb_metrics (counters + histogram percentiles),
// xmlrdb_statements (the statement log), and xmlrdb_tables (catalog stats).
// The "xmlrdb_" table-name prefix is reserved for them.

#ifndef XMLRDB_RDB_DATABASE_H_
#define XMLRDB_RDB_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "rdb/mvcc.h"
#include "rdb/plan.h"
#include "rdb/plan_cache.h"
#include "rdb/planner.h"
#include "rdb/sql_ast.h"
#include "rdb/table.h"

namespace xmlrdb::rdb {

class Database;
class Env;
class Wal;

/// One executed statement, as kept by the statement log.
struct StatementLogEntry {
  int64_t seq = 0;  ///< monotonically increasing statement number
  std::string sql;
  std::string kind;  ///< "select", "insert", ... (see StatementKind)
  int64_t duration_us = 0;
  int64_t lock_wait_us = 0;  ///< time spent acquiring statement-scope locks
  int64_t rows = 0;          ///< rows returned / affected; -1 on error
  bool slow = false;         ///< duration >= the configured threshold
  bool cache_hit = false;    ///< executed a cached plan (prepared path only)
  int64_t request_id = 0;  ///< client-supplied wire request id (0 = none)
  std::string plan;  ///< captured EXPLAIN ANALYZE tree (slow SELECTs only)
};

/// Bounded ring buffer of the most recent statements. Thread-safe.
class StatementLog {
 public:
  explicit StatementLog(size_t capacity = 256) : capacity_(capacity) {}
  ~StatementLog();

  /// Appends one entry (assigning its seq), evicting the oldest at capacity.
  /// No-op when the capacity is 0.
  void Append(StatementLogEntry entry);

  /// Entries oldest-first.
  std::vector<StatementLogEntry> Entries() const;

  size_t capacity() const;
  /// Resizes the ring; shrinking drops the oldest entries. 0 disables logging.
  void set_capacity(size_t capacity);

  /// Total statements ever appended (not bounded by capacity).
  int64_t total_appended() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  int64_t next_seq_ = 0;
  std::deque<StatementLogEntry> entries_;
};

/// One live network session, as reported by a session snapshot provider
/// (net::Server) and exposed through the xmlrdb_sessions virtual table.
struct SessionInfo {
  int64_t id = 0;
  std::string peer;   ///< "ip:port" of the client
  std::string state;  ///< "active" (statement executing), "idle", "closing"
  int64_t age_us = 0;
  int64_t statements = 0;  ///< statements executed so far
  int64_t pending = 0;     ///< pipelined requests waiting in-session
  int64_t busy_rejected = 0;
  int64_t prepared_statements = 0;
};

/// One engine shard, as reported by a shard snapshot provider
/// (shard::ShardRouter) and exposed through the xmlrdb_shards virtual
/// table. `scope` distinguishes routers sharing one control database (the
/// server registers one router per mapping).
struct ShardInfo {
  int64_t shard = 0;
  std::string scope;    ///< e.g. the mapping name this router serves
  int64_t docs = 0;     ///< documents currently owned by this shard
  int64_t requests = 0; ///< statements/evaluations routed here
  int64_t errors = 0;
  int64_t plancache_hits = 0;
  int64_t plancache_misses = 0;
  int64_t footprint_bytes = 0;
  int64_t version_bytes = 0;  ///< MVCC row-version bytes awaiting GC
  std::string dir;            ///< durable directory ("" = in-memory)
};

/// Result of Execute(): rows for queries, affected count for DML/DDL.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  int64_t affected = 0;
  /// EXPLAIN output (empty otherwise).
  std::string plan_text;

  /// Pretty table rendering, for examples and debugging.
  std::string ToString() const;
};

/// A statement parsed once (and, for SELECTs over base tables, plan-cached)
/// against a Database. Cheap to copy — copies share the cache entry. Execute
/// re-binds the positional `?` parameters and runs the statement; when the
/// schema has not changed since the last run, the compiled plan is reused
/// without re-parsing or re-planning.
class PreparedStatement {
 public:
  PreparedStatement() = default;

  /// Runs the statement with `params` bound to the `?` placeholders in
  /// order. `params.size()` must equal param_count().
  Result<QueryResult> Execute(std::vector<Value> params = {});

  /// The plan this statement would execute right now (replanning first if
  /// DDL invalidated the cached one). SELECT statements only.
  Result<std::string> ExplainPlan();

  bool valid() const { return db_ != nullptr; }
  const std::string& sql() const { return entry_->sql; }
  size_t param_count() const { return entry_->parsed.param_count; }

 private:
  friend class Database;
  PreparedStatement(Database* db, std::shared_ptr<PlanCacheEntry> entry)
      : db_(db), entry_(std::move(entry)) {}

  Database* db_ = nullptr;
  std::shared_ptr<PlanCacheEntry> entry_;
};

/// Pins one MVCC snapshot LSN across every statement executed on this
/// thread for the scope's lifetime, so a multi-statement read-only sequence
/// (an XPath evaluation issuing many SELECTs) observes one consistent state
/// regardless of concurrent DML. Nested scopes are no-ops — the outermost
/// pin wins. If non-transient DDL commits while the pin is open, later
/// statements under it fail with kTxnError rather than mix schema epochs;
/// callers re-acquire the snapshot and retry. Inert when the database runs
/// in legacy lock mode (XMLRDB_MVCC=off).
class ReadSnapshot {
 public:
  explicit ReadSnapshot(const Database* db);
  ~ReadSnapshot();
  ReadSnapshot(const ReadSnapshot&) = delete;
  ReadSnapshot& operator=(const ReadSnapshot&) = delete;

  /// True when this scope owns the pin (outermost, snapshot reads on).
  bool owner() const { return db_ != nullptr; }
  Lsn lsn() const { return lsn_; }

 private:
  friend class Database;
  /// The innermost owning pin on this thread, or nullptr.
  static const ReadSnapshot* Current();

  const Database* db_ = nullptr;
  Lsn lsn_ = 0;
  int64_t base_version_ = 0;  ///< base_schema_version at acquisition
  std::optional<MvccSnapshot> snap_;
};

class Database {
 public:
  Database();
  ~Database();  ///< out-of-line: wal_ points to an incomplete type here

  // -- catalog --
  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Sum of table footprints (storage benchmark).
  size_t FootprintBytes() const;

  // -- SQL --
  /// Parses and executes one statement. Safe to call from many threads at
  /// once; see the locking model above.
  Result<QueryResult> Execute(std::string_view sql);

  /// Plans a SELECT without running it.
  Result<PlanPtr> Plan(const SelectStmt& stmt) const;
  Result<PlanPtr> PlanSql(std::string_view select_sql) const;

  // -- prepared statements & plan cache --
  /// Parses `sql` once (or fetches the cached parse by exact text) and
  /// returns a handle that re-executes it with per-call `?` bindings.
  /// Repeated Prepare calls with the same text share one cache entry, so a
  /// warmed-up workload issues no parses and — for SELECTs — no planning.
  Result<PreparedStatement> Prepare(std::string_view sql);

  /// The shared statement/plan cache. set_capacity(0) disables caching
  /// (every Prepare parses fresh and Execute replans every time).
  PlanCache& plan_cache() { return plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }

  /// Catalog generation counter: bumped by every DDL statement (CREATE/DROP
  /// TABLE, CREATE INDEX). Cached plans carry the version they were built
  /// at and replan when it moves.
  int64_t schema_version() const {
    return schema_version_.load(std::memory_order_acquire);
  }

  /// Like schema_version(), but bumped only by DDL on non-transient tables —
  /// the scratch-table churn of XPath translation moves schema_version
  /// constantly without invalidating anything a pinned snapshot can see.
  /// ReadSnapshot records this at acquisition; statements under the pin fail
  /// with kTxnError when it has moved.
  int64_t base_schema_version() const {
    return base_schema_version_.load(std::memory_order_acquire);
  }

  /// True when read-only statements run on MVCC snapshots without table
  /// locks (the default; XMLRDB_MVCC=off selects legacy shared locks).
  bool snapshot_reads_enabled() const { return snapshot_reads_; }

  // -- version garbage collection --
  /// One collection pass over every MVCC catalog table: unlinks row
  /// versions no live or future snapshot can reach and frees what no
  /// active reader may still hold (see Table::CollectGarbage). Called at
  /// checkpoint time; safe to call from any thread at any time.
  TableGcStats CollectVersionGarbage();

  /// Starts/stops a background thread running CollectVersionGarbage every
  /// `interval_ms`. Idempotent; the destructor stops it.
  void StartVersionGc(int64_t interval_ms);
  void StopVersionGc();

  /// Planner knobs (parallel scan fan-out, thresholds). Set before serving
  /// traffic: the options are read without synchronization while planning.
  void set_planner_options(const PlannerOptions& options) {
    planner_options_ = options;
  }
  const PlannerOptions& planner_options() const { return planner_options_; }

  // -- observability --
  /// The statement log Execute() appends to. Use set_capacity(0) to disable.
  StatementLog& statement_log() { return statement_log_; }
  const StatementLog& statement_log() const { return statement_log_; }

  /// Slow-query threshold in microseconds. Negative (default) disables slow
  /// tracking. While >= 0, SELECTs execute with per-operator timing enabled
  /// and any statement at or over the threshold is flagged slow in the log
  /// with its EXPLAIN ANALYZE tree attached (0 = capture every statement).
  void set_slow_query_threshold_us(int64_t us) {
    slow_query_threshold_us_.store(us, std::memory_order_relaxed);
  }
  int64_t slow_query_threshold_us() const {
    return slow_query_threshold_us_.load(std::memory_order_relaxed);
  }

  /// True for the reserved virtual-table names ("xmlrdb_metrics",
  /// "xmlrdb_statements", "xmlrdb_tables", "xmlrdb_sessions",
  /// "xmlrdb_resources", "xmlrdb_shards").
  static bool IsVirtualTableName(const std::string& name);

  /// Hook for the network server: while set, SELECTs over xmlrdb_sessions
  /// materialize the provider's snapshot (without one the table is empty).
  /// Pass nullptr to unregister — the server does so before teardown, so
  /// the provider never outlives the sessions it reports on.
  void set_session_snapshot_provider(
      std::function<std::vector<SessionInfo>()> provider) {
    std::lock_guard<std::mutex> lock(session_provider_mu_);
    session_provider_ = std::move(provider);
  }

  /// Hook for the shard router(s): while set, SELECTs over xmlrdb_shards
  /// materialize the provider's snapshot. Works like the session provider;
  /// multiple routers are aggregated by the host before registering.
  void set_shard_snapshot_provider(
      std::function<std::vector<ShardInfo>()> provider) {
    std::lock_guard<std::mutex> lock(session_provider_mu_);
    shard_provider_ = std::move(provider);
  }

  // -- durability --
  /// True for scratch/temporary table names (leading '_'): the per-thread
  /// context and frontier tables the XPath translator churns through. They
  /// are never WAL-logged and never included in a checkpoint snapshot.
  static bool IsTransientTableName(const std::string& name) {
    return !name.empty() && name[0] == '_';
  }

  /// Makes this database durable: every future mutation of a non-transient
  /// table is logged to `wal` before it is applied (the log's error vetoes
  /// the mutation), and Checkpoint() writes snapshots under `dir` via `env`.
  /// Called once by OpenDurableDatabase after recovery, before any traffic.
  void AttachDurability(Env* env, std::string dir, std::unique_ptr<Wal> wal,
                        uint64_t next_checkpoint_seq);

  /// The attached write-ahead log, or nullptr for an in-memory database.
  Wal* wal() const { return wal_.get(); }

  /// Transaction gate: every WalTransaction scope holds it shared for its
  /// whole lifetime; Checkpoint() takes it exclusively so a snapshot never
  /// captures the in-memory rows of a transaction whose commit record would
  /// land in the post-snapshot log (which, after a crash, would resurrect an
  /// uncommitted transaction). Statement-scope mutations need no gate — they
  /// commit atomically with their single WAL append under the table lock.
  std::shared_mutex& txn_gate() { return txn_gate_; }

  /// Writes a consistent snapshot of every durable table, switches the WAL
  /// to a fresh log file, atomically flips the CURRENT pointer to the new
  /// (snapshot, log) pair, and deletes the old one. Quiesces writers for the
  /// duration (readers keep running). Error only in the durable state; the
  /// in-memory database is never harmed by a failed checkpoint — the old
  /// snapshot + log remain authoritative. Defined in durability.cc.
  Status Checkpoint();

 private:
  /// The tables a SELECT references, each held shared for statement scope.
  struct ReadLockSet;

  /// Per-statement execution details threaded out of the Run* helpers for
  /// the statement log.
  struct StatementExec {
    int64_t lock_wait_us = 0;
    /// EXPLAIN ANALYZE tree, filled for SELECTs while slow tracking is on.
    std::string analyzed_plan;
  };

  /// Resolves `from` under the catalog lock and pins every distinct table.
  /// In snapshot mode it then acquires (or reuses the thread's pinned) MVCC
  /// snapshot and installs the statement's read view — no table locks; in
  /// legacy mode (or with `force_locks`) it locks every table shared in
  /// ascending name order. Virtual xmlrdb_* names materialize a snapshot
  /// table owned by `out`. The catalog lock is released on return;
  /// lock-wait time is added to *lock_wait_us when non-null.
  Status LockTablesShared(const std::vector<TableRef>& from, ReadLockSet* out,
                          int64_t* lock_wait_us = nullptr,
                          bool force_locks = false) const;
  /// Resolves `name` and locks that table exclusively for statement scope;
  /// `pin` keeps it alive past a concurrent DROP.
  Status LockTableExclusive(const std::string& name, Table** table,
                            std::shared_ptr<Table>* pin,
                            std::unique_lock<std::shared_mutex>* lock,
                            int64_t* lock_wait_us = nullptr);
  /// Post-planning check that no base-table DDL raced the statement's
  /// snapshot; sets *retry to re-resolve + replan (kTxnError under a pin).
  Status RevalidateSnapshot(const ReadLockSet& locks, bool* retry) const;

  /// Builds the named virtual table from live engine state.
  std::unique_ptr<Table> MaterializeVirtualTable(const std::string& name) const;

  Result<Table*> CreateTableLocked(const std::string& name, Schema schema);
  const Table* FindTableLocked(const std::string& name) const;
  Table* FindTableLocked(const std::string& name);

  Result<PlanPtr> PlanWithLocks(const SelectStmt& stmt,
                                const ReadLockSet& locks) const;

  friend class PreparedStatement;
  /// Execution + observability epilogue for PreparedStatement::Execute.
  Result<QueryResult> ExecutePrepared(PlanCacheEntry* entry,
                                      std::vector<Value> params);
  /// SELECT path with plan reuse: validates the cached plan against the
  /// schema version, replanning on mismatch. Requires entry->exec_mu held.
  Result<QueryResult> RunSelectPrepared(PlanCacheEntry* entry,
                                        StatementExec* exec, bool* cache_hit);
  Result<std::string> ExplainPrepared(PlanCacheEntry* entry);
  void BumpSchemaVersion() {
    schema_version_.fetch_add(1, std::memory_order_acq_rel);
  }
  void BumpBaseSchemaVersion() {
    base_schema_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  friend class ReadSnapshot;

  /// Checkpoint body (durability.cc); Checkpoint() wraps it and follows up
  /// with a version-GC pass once every quiesce lock is released.
  Status CheckpointImpl();

  Result<QueryResult> Dispatch(const Statement& stmt, StatementExec* exec);
  Result<QueryResult> RunSelect(const SelectStmt& stmt, StatementExec* exec);
  Result<QueryResult> RunExplain(const ExplainStmt& stmt, StatementExec* exec);
  Result<QueryResult> RunCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> RunCreateIndex(const CreateIndexStmt& stmt,
                                     StatementExec* exec);
  Result<QueryResult> RunDropTable(const DropTableStmt& stmt);
  Result<QueryResult> RunInsert(const InsertStmt& stmt, StatementExec* exec);
  Result<QueryResult> RunDelete(const DeleteStmt& stmt, StatementExec* exec);
  Result<QueryResult> RunUpdate(const UpdateStmt& stmt, StatementExec* exec);

  mutable std::shared_mutex mu_;  ///< guards tables_ (the catalog)
  /// Tables are held by shared_ptr so lock-free snapshot readers can pin
  /// one across DROP TABLE: the object (and its version chains) stays
  /// alive until the last in-flight statement drops its pin.
  std::map<std::string, std::shared_ptr<Table>> tables_;
  bool snapshot_reads_ = true;  ///< set from XMLRDB_MVCC in the constructor
  PlannerOptions planner_options_;
  StatementLog statement_log_;
  std::atomic<int64_t> slow_query_threshold_us_{-1};
  std::atomic<int64_t> schema_version_{0};
  std::atomic<int64_t> base_schema_version_{0};
  PlanCache plan_cache_;
  mutable std::mutex session_provider_mu_;
  std::function<std::vector<SessionInfo>()> session_provider_;
  std::function<std::vector<ShardInfo>()> shard_provider_;

  // Background version GC (StartVersionGc / StopVersionGc).
  std::mutex gc_mu_;
  std::condition_variable gc_cv_;
  bool gc_stop_ = false;
  std::thread gc_thread_;

  // Durability state (set once by AttachDurability, before traffic).
  // Lock order: checkpoint_mu_ -> mu_ (shared) -> table locks (name order)
  // -> the Wal's internal mutex, which is a leaf. The MVCC engine's commit
  // and snapshot mutexes are leaves below every lock above.
  Env* env_ = nullptr;
  std::string durable_dir_;
  std::unique_ptr<Wal> wal_;
  std::shared_mutex txn_gate_;
  std::mutex checkpoint_mu_;  ///< serializes Checkpoint() calls
  uint64_t checkpoint_seq_ = 0;  ///< guarded by checkpoint_mu_
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_DATABASE_H_
