// Abstract syntax for the supported SQL subset.
//
// Supported statements:
//   CREATE TABLE t (col TYPE [NOT NULL], ...)
//   CREATE INDEX i ON t (c1, c2, ...)
//   DROP TABLE t
//   INSERT INTO t VALUES (...), (...) ...
//   DELETE FROM t [WHERE expr]
//   UPDATE t SET c = expr [, ...] [WHERE expr]
//   SELECT [DISTINCT] items FROM t [a] [, t2 [b]] [JOIN t3 [c] ON expr]
//     [WHERE expr] [GROUP BY exprs] [HAVING expr]
//     [ORDER BY expr [ASC|DESC], ...] [LIMIT n [OFFSET m]]
//   EXPLAIN [ANALYZE] SELECT ...

#ifndef XMLRDB_RDB_SQL_AST_H_
#define XMLRDB_RDB_SQL_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "rdb/expr.h"
#include "rdb/schema.h"

namespace xmlrdb::rdb {

struct SelectItem {
  ExprPtr expr;        ///< null when star is set
  std::string alias;   ///< AS name, may be empty
  bool star = false;   ///< SELECT *
};

struct TableRef {
  std::string table;
  std::string alias;  ///< defaults to the table name

  const std::string& effective_alias() const {
    return alias.empty() ? table : alias;
  }
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  ///< JOIN ... ON conditions are folded in here
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  ///< -1 = no limit
  int64_t offset = 0;
};

struct CreateTableStmt {
  std::string name;
  std::vector<Column> columns;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;
};

struct DropTableStmt {
  std::string name;
  bool if_exists = false;
};

struct InsertStmt {
  std::string table;
  /// Each row is a list of literal-valued expressions.
  std::vector<std::vector<ExprPtr>> rows;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  ///< null = delete all
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct ExplainStmt {
  std::unique_ptr<SelectStmt> select;
  /// EXPLAIN ANALYZE: execute the plan and annotate operators with actual
  /// row counts and wall time.
  bool analyze = false;
};

using Statement = std::variant<SelectStmt, CreateTableStmt, CreateIndexStmt,
                               DropTableStmt, InsertStmt, DeleteStmt, UpdateStmt,
                               ExplainStmt>;

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_SQL_AST_H_
