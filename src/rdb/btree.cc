#include "rdb/btree.h"

#include <algorithm>
#include <cassert>

namespace xmlrdb::rdb {

int PrefixCompareRows(const Row& key, const Row& prefix) {
  size_t n = std::min(key.size(), prefix.size());
  for (size_t i = 0; i < n; ++i) {
    int c = key[i].Compare(prefix[i]);
    if (c != 0) return c;
  }
  // Prefix exhausted: equal as far as the prefix goes.
  return 0;
}

struct BTree::Node {
  bool is_leaf;
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
};

struct BTree::LeafNode : Node {
  LeafNode() : Node(true) {}
  std::vector<Row> keys;
  LeafNode* next = nullptr;
};

struct BTree::InternalNode : Node {
  InternalNode() : Node(false) {}
  // children.size() == separators.size() + 1.
  // separators[i] is the smallest key in the subtree children[i+1].
  std::vector<Row> separators;
  std::vector<Node*> children;
};

BTree::BTree(size_t max_keys) : root_(new LeafNode()), max_keys_(max_keys) {
  assert(max_keys_ >= 4);
}

BTree::~BTree() {
  // Iterative post-order destruction to avoid deep recursion on skewed trees.
  std::vector<Node*> stack{root_};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (!n->is_leaf) {
      auto* in = static_cast<InternalNode*>(n);
      for (Node* c : in->children) stack.push_back(c);
    }
    delete n;
  }
}

BTree::LeafNode* BTree::FindLeaf(const Row& key) const {
  Node* n = root_;
  while (!n->is_leaf) {
    auto* in = static_cast<InternalNode*>(n);
    // First separator > key → go to that child; otherwise rightmost.
    size_t i = 0;
    while (i < in->separators.size() && CompareRows(key, in->separators[i]) >= 0) {
      ++i;
    }
    n = in->children[i];
  }
  return static_cast<LeafNode*>(n);
}

bool BTree::Insert(Row key) {
  // Descend, remembering the path for splits.
  std::vector<InternalNode*> path;
  std::vector<size_t> path_idx;
  Node* n = root_;
  while (!n->is_leaf) {
    auto* in = static_cast<InternalNode*>(n);
    size_t i = 0;
    while (i < in->separators.size() && CompareRows(key, in->separators[i]) >= 0) {
      ++i;
    }
    path.push_back(in);
    path_idx.push_back(i);
    n = in->children[i];
  }
  auto* leaf = static_cast<LeafNode*>(n);
  auto it = std::lower_bound(
      leaf->keys.begin(), leaf->keys.end(), key,
      [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  if (it != leaf->keys.end() && CompareRows(*it, key) == 0) return false;
  leaf->keys.insert(it, std::move(key));
  ++size_;

  if (leaf->keys.size() <= max_keys_) return true;

  // Split the leaf.
  auto* right = new LeafNode();
  size_t mid = leaf->keys.size() / 2;
  right->keys.assign(std::make_move_iterator(leaf->keys.begin() + mid),
                     std::make_move_iterator(leaf->keys.end()));
  leaf->keys.resize(mid);
  right->next = leaf->next;
  leaf->next = right;
  Row up_key = right->keys.front();
  Node* new_child = right;

  // Propagate splits upward.
  while (!path.empty()) {
    InternalNode* parent = path.back();
    size_t idx = path_idx.back();
    path.pop_back();
    path_idx.pop_back();
    parent->separators.insert(parent->separators.begin() + idx, up_key);
    parent->children.insert(parent->children.begin() + idx + 1, new_child);
    if (parent->separators.size() <= max_keys_) return true;
    // Split internal node.
    auto* rnode = new InternalNode();
    size_t m = parent->separators.size() / 2;
    up_key = parent->separators[m];
    rnode->separators.assign(
        std::make_move_iterator(parent->separators.begin() + m + 1),
        std::make_move_iterator(parent->separators.end()));
    rnode->children.assign(parent->children.begin() + m + 1,
                           parent->children.end());
    parent->separators.resize(m);
    parent->children.resize(m + 1);
    new_child = rnode;
    // continue loop: insert (up_key, rnode) into grandparent
    if (path.empty()) {
      // parent was root
      auto* new_root = new InternalNode();
      new_root->separators.push_back(up_key);
      new_root->children.push_back(parent);
      new_root->children.push_back(rnode);
      root_ = new_root;
      ++height_;
      return true;
    }
  }
  // Leaf was the root.
  auto* new_root = new InternalNode();
  new_root->separators.push_back(up_key);
  new_root->children.push_back(leaf);
  new_root->children.push_back(new_child);
  root_ = new_root;
  ++height_;
  return true;
}

bool BTree::Erase(const Row& key) {
  LeafNode* leaf = FindLeaf(key);
  auto it = std::lower_bound(
      leaf->keys.begin(), leaf->keys.end(), key,
      [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  if (it == leaf->keys.end() || CompareRows(*it, key) != 0) return false;
  leaf->keys.erase(it);
  --size_;
  return true;
}

bool BTree::Contains(const Row& key) const {
  const LeafNode* leaf = FindLeaf(key);
  auto it = std::lower_bound(
      leaf->keys.begin(), leaf->keys.end(), key,
      [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  return it != leaf->keys.end() && CompareRows(*it, key) == 0;
}

const Row& BTree::Iterator::key() const {
  const auto* leaf = static_cast<const BTree::LeafNode*>(leaf_);
  return leaf->keys[pos_];
}

void BTree::Iterator::Next() {
  const auto* leaf = static_cast<const BTree::LeafNode*>(leaf_);
  ++pos_;
  while (leaf != nullptr && pos_ >= leaf->keys.size()) {
    leaf = leaf->next;
    pos_ = 0;
  }
  leaf_ = leaf;
}

BTree::Iterator BTree::Begin() const {
  Node* n = root_;
  while (!n->is_leaf) n = static_cast<InternalNode*>(n)->children.front();
  auto* leaf = static_cast<LeafNode*>(n);
  Iterator it;
  it.leaf_ = leaf;
  it.pos_ = 0;
  // Skip empty leaves (possible after lazy deletes).
  while (leaf != nullptr && leaf->keys.empty()) {
    leaf = leaf->next;
    it.leaf_ = leaf;
  }
  if (leaf == nullptr) it.leaf_ = nullptr;
  return it;
}

BTree::Iterator BTree::SeekAtLeast(const Row& bound, bool inclusive) const {
  // Descend using full comparison against the bound; because the bound may be
  // a strict prefix, CompareRows orders it before any key sharing the prefix,
  // so lower_bound-style descent lands at the correct leaf.
  Node* n = root_;
  while (!n->is_leaf) {
    auto* in = static_cast<InternalNode*>(n);
    // Descend to the leftmost child that can contain a prefix-equal key:
    // advance only past separators strictly below the bound.
    size_t i = 0;
    while (i < in->separators.size() &&
           PrefixCompareRows(in->separators[i], bound) < 0) {
      ++i;
    }
    n = in->children[i];
  }
  auto* leaf = static_cast<LeafNode*>(n);
  Iterator it;
  it.leaf_ = leaf;
  it.pos_ = 0;
  // Advance within the leaf chain to the first qualifying key.
  while (it.Valid()) {
    const auto* l = static_cast<const LeafNode*>(it.leaf_);
    if (it.pos_ >= l->keys.size()) {
      it.leaf_ = l->next;
      it.pos_ = 0;
      continue;
    }
    int c = PrefixCompareRows(l->keys[it.pos_], bound);
    if (c > 0 || (inclusive && c == 0)) break;
    ++it.pos_;
  }
  return it;
}

Status BTree::CheckInvariants() const {
  // All keys strictly increasing along the leaf chain, and count matches.
  Iterator it = Begin();
  size_t count = 0;
  const Row* prev = nullptr;
  while (it.Valid()) {
    if (prev != nullptr && CompareRows(*prev, it.key()) >= 0) {
      return Status::Internal("B+-tree keys out of order");
    }
    prev = &it.key();
    ++count;
    it.Next();
  }
  if (count != size_) {
    return Status::Internal("B+-tree size mismatch: counted " +
                            std::to_string(count) + ", recorded " +
                            std::to_string(size_));
  }
  return Status::OK();
}

}  // namespace xmlrdb::rdb
