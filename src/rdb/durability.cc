#include "rdb/durability.h"

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/str_util.h"
#include "common/trace.h"
#include "rdb/mvcc.h"
#include "rdb/persist.h"

namespace xmlrdb::rdb {

namespace {

constexpr char kCurrentHeader[] = "xmlrdb-current 1";
constexpr char kNoSnapshot[] = "-";

struct CurrentFile {
  std::string snapshot;  ///< directory name under dir, or "-"
  std::string wal;       ///< log file name under dir
  uint64_t seq = 0;      ///< checkpoint sequence that wrote this pair
};

/// CURRENT is four lines: header, snapshot name, wal name, sequence.
Result<CurrentFile> ReadCurrent(Env* env, const std::string& dir) {
  ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(dir + "/CURRENT"));
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < data.size()) {
    size_t nl = data.find('\n', start);
    if (nl == std::string::npos) nl = data.size();
    lines.push_back(data.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.size() < 4 || lines[0] != kCurrentHeader) {
    return Status::IoError("malformed CURRENT file in " + dir);
  }
  CurrentFile cur;
  cur.snapshot = lines[1];
  cur.wal = lines[2];
  ASSIGN_OR_RETURN(int64_t seq, ParseInt64(lines[3]));
  cur.seq = static_cast<uint64_t>(seq);
  if (cur.wal.empty()) return Status::IoError("CURRENT names no WAL file");
  return cur;
}

Status WriteCurrent(Env* env, const std::string& dir, const CurrentFile& cur) {
  std::string data(kCurrentHeader);
  data += "\n" + cur.snapshot + "\n" + cur.wal + "\n" +
          std::to_string(cur.seq) + "\n";
  const std::string tmp = dir + "/CURRENT.tmp";
  {
    ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                     env->NewWritableFile(tmp, /*truncate=*/true));
    RETURN_IF_ERROR(f->Append(data));
    RETURN_IF_ERROR(f->Sync());
    RETURN_IF_ERROR(f->Close());
  }
  // The atomic commit point of both checkpointing and cold start.
  return env->RenameFile(tmp, dir + "/CURRENT");
}

/// First live row whose value equals `row` (the WAL identifies rows by
/// content; row ids are not stable across snapshots).
Result<RowId> FindRowByValue(Table* t, const Row& row) {
  for (RowId rid = 0; rid < t->num_slots(); ++rid) {
    if (!t->IsLive(rid)) continue;
    const Row& r = t->row(rid);
    if (r.size() == row.size() && CompareRows(r, row) == 0) return rid;
  }
  return Status::IoError("WAL replay: table '" + t->name() +
                         "' has no row matching " + RowToString(row));
}

/// Applies one record, stamping the row versions it creates or deletes with
/// `stamp_lsn` as already-committed (ScopedApplyLsn): autocommit records use
/// their own LSN, records of a committed transaction the commit record's —
/// so version visibility order after recovery matches the commit order the
/// log established, and crash-replay restores the stamps readers saw before
/// the crash.
Status ReplayRecord(Database* db, const WalRecord& rec, Lsn stamp_lsn) {
  ScopedApplyLsn apply(stamp_lsn);
  switch (rec.type) {
    case WalRecordType::kCommit:
      return Status::OK();
    case WalRecordType::kCreateTable: {
      ASSIGN_OR_RETURN([[maybe_unused]] Table * t,
                       db->CreateTable(rec.table, Schema(rec.columns)));
      return Status::OK();
    }
    case WalRecordType::kDropTable:
      return db->DropTable(rec.table);
    default:
      break;
  }
  Table* t = db->FindTable(rec.table);
  if (t == nullptr) {
    return Status::IoError("WAL replay: unknown table '" + rec.table + "'");
  }
  switch (rec.type) {
    case WalRecordType::kInsert: {
      ASSIGN_OR_RETURN([[maybe_unused]] RowId rid, t->Insert(rec.row));
      return Status::OK();
    }
    case WalRecordType::kDelete: {
      ASSIGN_OR_RETURN(RowId rid, FindRowByValue(t, rec.row));
      return t->Delete(rid);
    }
    case WalRecordType::kUpdate: {
      ASSIGN_OR_RETURN(RowId rid, FindRowByValue(t, rec.old_row));
      return t->Update(rid, rec.row);
    }
    case WalRecordType::kCreateIndex:
      return t->CreateIndex(rec.index_name, rec.index_columns);
    default:
      return Status::IoError("WAL replay: unexpected record type");
  }
}

/// Applies the committed content of `records` to `db` (no WAL attached yet).
/// Transaction-0 records apply at their own position; records of a committed
/// transaction apply together at their kCommit record's position, preserving
/// the commit order the log established.
Status ReplayLog(Database* db, const std::vector<WalRecord>& records,
                 RecoveryStats* stats) {
  std::set<uint64_t> committed;
  for (const WalRecord& rec : records) {
    if (rec.type == WalRecordType::kCommit) committed.insert(rec.txn);
  }
  stats->txns_committed = static_cast<int64_t>(committed.size());

  std::map<uint64_t, std::vector<const WalRecord*>> pending;
  for (const WalRecord& rec : records) {
    if (rec.type == WalRecordType::kCommit) {
      auto it = pending.find(rec.txn);
      if (it == pending.end()) continue;  // empty transaction
      for (const WalRecord* r : it->second) {
        RETURN_IF_ERROR(ReplayRecord(db, *r, rec.lsn));
        ++stats->records_replayed;
      }
      pending.erase(it);
    } else if (rec.txn == 0) {
      RETURN_IF_ERROR(ReplayRecord(db, rec, rec.lsn));
      ++stats->records_replayed;
    } else if (committed.count(rec.txn) > 0) {
      pending[rec.txn].push_back(&rec);
    } else {
      ++stats->records_discarded;
    }
  }
  // Records of a transaction that appear *after* its commit record can only
  // come from a buggy writer; treat them like uncommitted work.
  for (const auto& [txn, recs] : pending) {
    stats->records_discarded += static_cast<int64_t>(recs.size());
  }
  return Status::OK();
}

/// Rewrites the log to its intact prefix after a torn tail: copy the prefix
/// to a temp file, sync, rename over the log. Appending after a torn tail
/// without this would bury garbage mid-log, which a later open would
/// (rightly) refuse as corruption.
Status TruncateTornTail(Env* env, const std::string& path,
                        size_t valid_bytes) {
  ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  const std::string tmp = path + ".tmp";
  {
    ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                     env->NewWritableFile(tmp, /*truncate=*/true));
    RETURN_IF_ERROR(f->Append(std::string_view(data).substr(0, valid_bytes)));
    RETURN_IF_ERROR(f->Sync());
    RETURN_IF_ERROR(f->Close());
  }
  return env->RenameFile(tmp, path);
}

}  // namespace

Result<std::unique_ptr<Database>> OpenDurableDatabase(
    Env* env, const std::string& dir, const DurableOptions& options,
    RecoveryStats* stats) {
  ScopedSpan span("recovery.open", "durability");
  auto& metrics = MetricsRegistry::Global();
  RecoveryStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = RecoveryStats();

  RETURN_IF_ERROR(env->CreateDirs(dir));

  if (!env->FileExists(dir + "/CURRENT")) {
    // Cold start: empty database, empty log, then publish via CURRENT.
    stats->cold_start = true;
    metrics.Add("recovery.cold_starts", 1);
    CurrentFile cur;
    cur.snapshot = kNoSnapshot;
    cur.wal = "wal_0.log";
    cur.seq = 0;
    const std::string wal_path = dir + "/" + cur.wal;
    ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                     Wal::CreateLogFile(env, wal_path, /*start_lsn=*/1));
    RETURN_IF_ERROR(WriteCurrent(env, dir, cur));
    auto db = std::make_unique<Database>();
    db->AttachDurability(
        env, dir,
        std::make_unique<Wal>(env, wal_path, std::move(file), options.wal,
                              /*next_lsn=*/1),
        /*next_checkpoint_seq=*/1);
    return db;
  }

  ASSIGN_OR_RETURN(CurrentFile cur, ReadCurrent(env, dir));

  std::unique_ptr<Database> db;
  if (cur.snapshot == kNoSnapshot) {
    db = std::make_unique<Database>();
  } else {
    stats->snapshot_dir = cur.snapshot;
    ASSIGN_OR_RETURN(db, LoadDatabase(env, dir + "/" + cur.snapshot));
  }

  const std::string wal_path = dir + "/" + cur.wal;
  ASSIGN_OR_RETURN(WalReadResult log, ReadWal(env, wal_path));
  stats->records_scanned = static_cast<int64_t>(log.records.size());
  if (log.torn_tail) {
    stats->torn_tail_truncated = true;
    metrics.Add("recovery.torn_tails", 1);
    RETURN_IF_ERROR(TruncateTornTail(env, wal_path, log.valid_bytes));
  }

  {
    ScopedSpan replay_span("recovery.replay", "durability");
    RETURN_IF_ERROR(ReplayLog(db.get(), log.records, stats));
  }
  metrics.Add("recovery.records_replayed", stats->records_replayed);
  metrics.Add("recovery.records_discarded", stats->records_discarded);

  // Reopen the validated log for appending. A missing or headerless log
  // (CURRENT named it but nothing was ever appended durably) is recreated
  // with a fresh header so later appends land in a well-formed file.
  std::unique_ptr<WritableFile> file;
  if (!env->FileExists(wal_path) || log.valid_bytes == 0) {
    ASSIGN_OR_RETURN(file, Wal::CreateLogFile(env, wal_path, log.next_lsn));
  } else {
    ASSIGN_OR_RETURN(file, env->NewWritableFile(wal_path, /*truncate=*/false));
  }
  db->AttachDurability(
      env, dir,
      std::make_unique<Wal>(env, wal_path, std::move(file), options.wal,
                            log.next_lsn),
      /*next_checkpoint_seq=*/cur.seq + 1);
  return db;
}

// ---------------------------------------------------------------------------
// Checkpoint (declared in database.h; lives here with the rest of the
// durable-layout knowledge).

Status Database::Checkpoint() {
  RETURN_IF_ERROR(CheckpointImpl());
  // Checkpoint time doubles as a version-GC point: the log was just
  // truncated, so trim version chains down to the oldest live snapshot too.
  // Runs after every quiesce lock is released (GC takes tables exclusive).
  CollectVersionGarbage();
  return Status::OK();
}

Status Database::CheckpointImpl() {
  std::lock_guard<std::mutex> serialize(checkpoint_mu_);
  if (wal_ == nullptr) {
    return Status::InvalidArgument("no durability attached to this database");
  }
  ScopedSpan span("checkpoint", "durability");

  // Quiesce, outermost first (see the lock-order note in database.h):
  // 1. the transaction gate, so no multi-statement transaction is mid-way;
  // 2. the catalog shared, so no DDL runs;
  // 3. every durable table shared (map order = ascending name order), so no
  //    statement-scope mutation runs. Readers keep executing throughout.
  std::unique_lock<std::shared_mutex> txn_block(txn_gate_);
  std::shared_lock<std::shared_mutex> catalog(mu_);
  std::vector<std::shared_lock<std::shared_mutex>> table_locks;
  std::vector<const Table*> tables;
  table_locks.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    if (IsTransientTableName(name)) continue;
    table_locks.emplace_back(table->mutex());
    tables.push_back(table.get());
  }

  // Everything logged so far must be durable before the snapshot that
  // supersedes it claims to contain it.
  RETURN_IF_ERROR(wal_->Sync());
  RETURN_IF_ERROR(env_->CrashPoint("checkpoint.before_snapshot"));

  const uint64_t seq = checkpoint_seq_;
  CurrentFile cur;
  cur.snapshot = "snap_" + std::to_string(seq);
  cur.wal = "wal_" + std::to_string(seq) + ".log";
  cur.seq = seq;

  // Snapshot first, then the fresh (empty) log starting at the next LSN,
  // then flip CURRENT. A crash anywhere before the flip leaves the old
  // (snapshot, log) pair authoritative and the new files as ignored garbage.
  RETURN_IF_ERROR(SaveTables(env_, tables, durable_dir_ + "/" + cur.snapshot));
  RETURN_IF_ERROR(env_->CrashPoint("checkpoint.after_snapshot"));
  const std::string new_wal_path = durable_dir_ + "/" + cur.wal;
  ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> new_log,
                   Wal::CreateLogFile(env_, new_wal_path, wal_->next_lsn()));
  RETURN_IF_ERROR(env_->CrashPoint("checkpoint.before_current"));
  RETURN_IF_ERROR(WriteCurrent(env_, durable_dir_, cur));
  RETURN_IF_ERROR(env_->CrashPoint("checkpoint.after_current"));

  // Point of no return: the new pair is live on disk; route appends to it.
  wal_->SwapFile(std::move(new_log), new_wal_path);
  ++checkpoint_seq_;
  MetricsRegistry::Global().Add("wal.checkpoints", 1);

  // Best-effort cleanup of everything CURRENT no longer names — the
  // superseded pair, plus debris of checkpoints that crashed halfway.
  auto listing = env_->ListDir(durable_dir_);
  if (listing.ok()) {
    for (const std::string& name : listing.value()) {
      if (name == "CURRENT" || name == cur.snapshot || name == cur.wal) {
        continue;
      }
      if (name.rfind("snap_", 0) == 0) {
        (void)env_->RemoveDirRecursive(durable_dir_ + "/" + name);
      } else if (name.rfind("wal_", 0) == 0 || name == "CURRENT.tmp") {
        (void)env_->RemoveFile(durable_dir_ + "/" + name);
      }
    }
  }
  return Status::OK();
}

}  // namespace xmlrdb::rdb
