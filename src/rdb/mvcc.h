// Multi-version concurrency control: LSN-stamped row versions and
// lock-free snapshot reads.
//
// Every committed row version carries two stamps: the LSN of the commit
// that created it and the LSN of the commit that deleted it (0 = still
// live). A read-only statement acquires a snapshot LSN S and sees exactly
// the versions with created <= S and not (deleted != 0 && deleted <= S) —
// without taking any table lock. DML conflicts only with DML.
//
// Stamps and the uncommitted bit
//   While a transaction is in flight its versions carry a provisional stamp
//   kUncommittedStampBit | txn_id, which is invisible to every snapshot
//   except the owning transaction's own statements (read-your-own-writes).
//   Commit re-stamps the whole write set with one freshly allocated LSN and
//   only then publishes that LSN as visible — serialized under a commit
//   mutex, so a reader that observes snapshot S is guaranteed to observe
//   the final stamps of every commit with LSN <= S (release/acquire on
//   visible_lsn pairs with the stamp stores).
//
// LSN space
//   The engine clock shares the WAL's LSN space: Wal::Append advances the
//   clock past every record LSN it hands out, so the commit LSN of a
//   durable transaction is always greater than the LSNs of its WAL records,
//   and recovery can restore exact stamps with ScopedApplyLsn. In-memory
//   databases simply allocate from the same atomic clock.
//
// Reclamation
//   Garbage collection unlinks versions that no current or future snapshot
//   can reach (bounded by min(oldest active snapshot, visible LSN)) and
//   parks them on a limbo list stamped with the visible LSN observed after
//   the unlink. A parked version is freed only once every active snapshot
//   was acquired after that stamp (or none is active) — a reader that could
//   still hold a raw pointer into the chain necessarily acquired its
//   snapshot before the unlink, and such snapshots block the free.

#ifndef XMLRDB_RDB_MVCC_H_
#define XMLRDB_RDB_MVCC_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace xmlrdb::rdb {

using Lsn = uint64_t;

/// Set on a version stamp while its transaction is in flight; the low bits
/// then hold the transaction id instead of an LSN.
inline constexpr uint64_t kUncommittedStampBit = 1ull << 63;

/// Largest value the engine clock can reach (and the "no bound" sentinel).
inline constexpr Lsn kLsnMax = kUncommittedStampBit - 1;

inline bool StampIsCommitted(uint64_t stamp) {
  return (stamp & kUncommittedStampBit) == 0;
}
inline uint64_t StampTxn(uint64_t stamp) {
  return stamp & ~kUncommittedStampBit;
}

/// What a scan is allowed to see. Captured once per statement (at plan-node
/// Open) so every operator of one statement filters identically.
struct MvccReadView {
  Lsn snapshot = 0;      ///< highest commit LSN visible
  uint64_t own_txn = 0;  ///< in-flight txn whose provisional stamps are
                         ///< visible to this view (0 = none)
  bool read_latest = false;  ///< bypass MVCC: see the newest in-memory state
                             ///< (legacy lock mode, direct executor use)

  /// True if a version created with `stamp` exists for this view.
  bool CreatedVisible(uint64_t stamp) const {
    if (!StampIsCommitted(stamp)) {
      return own_txn != 0 && StampTxn(stamp) == own_txn;
    }
    return stamp <= snapshot;
  }
  /// True if a deletion stamped `stamp` has happened for this view.
  bool DeletedVisible(uint64_t stamp) const {
    if (stamp == 0) return false;
    if (!StampIsCommitted(stamp)) {
      return own_txn != 0 && StampTxn(stamp) == own_txn;
    }
    return stamp <= snapshot;
  }
};

/// Process-wide MVCC clock, commit point, and snapshot registry. One
/// instance serves every Database in the process (they already share the
/// metrics registry and resource tracker); the clock being merely monotonic
/// across databases is harmless.
class MvccEngine {
 public:
  static MvccEngine& Global();

  /// Highest commit LSN whose stamps are guaranteed published (acquire).
  Lsn visible_lsn() const { return visible_.load(std::memory_order_acquire); }

  /// Makes sure the next allocated commit LSN is > `lsn`. Called by the WAL
  /// for every record it stamps, so commit LSNs stay above record LSNs.
  void EnsureNextAbove(Lsn lsn);

  /// Recovery/bulk-load only (single-threaded): moves both the clock and
  /// the visible horizon to at least `lsn`, so stamps replayed from the WAL
  /// are immediately visible and future commits stay above them.
  void AdvanceVisibleTo(Lsn lsn);

  /// Fresh transaction id for provisional stamps (never 0).
  uint64_t AllocateTxnId() {
    return next_txn_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The commit point: allocates the next LSN, rewrites every stamp in
  /// `stamps` with it, then publishes it as visible. Serialized so visible
  /// never runs ahead of unpublished stamps.
  Lsn CommitStamps(const std::vector<std::atomic<uint64_t>*>& stamps);

  /// Registers a snapshot at the current visible LSN.
  Lsn AcquireSnapshot();
  void ReleaseSnapshot(Lsn snapshot);

  /// GC bound: no current or future snapshot can observe a state older
  /// than this. min(oldest active snapshot, visible LSN).
  Lsn GcBound() const;

  /// Limbo-free bound: a version unlinked at stamp V may be freed once
  /// every active snapshot is > V (see file comment). Returns the oldest
  /// active snapshot, or kLsnMax when none is active.
  Lsn ReclaimFloor() const;

  size_t ActiveSnapshots() const;

 private:
  MvccEngine() = default;

  mutable std::mutex commit_mu_;  ///< serializes CommitStamps
  Lsn next_ = 1;                  ///< next commit LSN (under commit_mu_)
  std::atomic<Lsn> visible_{0};

  mutable std::mutex snap_mu_;
  std::map<Lsn, size_t> active_;  ///< snapshot LSN -> refcount

  std::atomic<uint64_t> next_txn_{1};
};

/// RAII registration of one snapshot LSN with the engine.
class MvccSnapshot {
 public:
  MvccSnapshot() : lsn_(MvccEngine::Global().AcquireSnapshot()) {}
  ~MvccSnapshot() {
    if (held_) MvccEngine::Global().ReleaseSnapshot(lsn_);
  }
  MvccSnapshot(MvccSnapshot&& o) noexcept : lsn_(o.lsn_), held_(o.held_) {
    o.held_ = false;
    o.lsn_ = 0;
  }
  MvccSnapshot& operator=(MvccSnapshot&&) = delete;
  MvccSnapshot(const MvccSnapshot&) = delete;

  Lsn lsn() const { return lsn_; }

 private:
  Lsn lsn_;
  bool held_ = true;
};

/// Groups the row mutations issued on this thread into one atomic
/// visibility unit: every touched stamp stays provisional until Commit
/// rewrites them all with a single LSN. Nested scopes are no-ops (the
/// outermost owns the commit). The destructor commits if Commit was not
/// called explicitly — in-memory state intentionally keeps whatever a
/// failed operation left behind (matching WalTransaction's contract that
/// only *recovery* rolls uncommitted work back), so stamps must never stay
/// provisional past the scope that created them.
class MvccTransaction {
 public:
  MvccTransaction();
  ~MvccTransaction();
  MvccTransaction(const MvccTransaction&) = delete;
  MvccTransaction& operator=(const MvccTransaction&) = delete;

  /// Stamps the write set with one fresh LSN and publishes it. Idempotent;
  /// returns 0 on a nested (non-owning) scope or an empty write set.
  Lsn Commit();

  /// Transaction id active on this thread (0 = none).
  static uint64_t CurrentTxnId();

  /// Called by Table under its exclusive lock for every provisional stamp
  /// it writes on behalf of this transaction.
  static void RecordStamp(std::atomic<uint64_t>* stamp);

  /// Keeps an object (the table owning recorded stamps) alive until the
  /// transaction finishes, so commit never touches freed memory even if
  /// the table is dropped mid-transaction.
  static void Pin(std::shared_ptr<const void> keep_alive);

 private:
  bool owner_ = false;
  bool committed_ = false;
  uint64_t txn_id_ = 0;
  std::vector<std::atomic<uint64_t>*> stamps_;
  std::vector<std::shared_ptr<const void>> pins_;
};

/// Installs a read view as the thread's current one for the scope (set per
/// statement by Database; plan nodes capture it at Open).
class ScopedReadView {
 public:
  explicit ScopedReadView(MvccReadView view);
  ~ScopedReadView();
  ScopedReadView(const ScopedReadView&) = delete;
  ScopedReadView& operator=(const ScopedReadView&) = delete;

 private:
  MvccReadView view_;
  const MvccReadView* prev_;
};

/// The thread's current read view, or nullptr when none is installed.
const MvccReadView* CurrentReadView();

/// View scans should use right now: the installed one, or (outside any
/// Database statement — direct executor use, writer-side row access)
/// latest-state semantics.
MvccReadView EffectiveReadView();

/// WAL replay scope: while active, Table stamps mutations on this thread
/// directly with `lsn` as already-committed (and advances the visible
/// horizon), restoring the exact stamps a crashed process had published.
class ScopedApplyLsn {
 public:
  explicit ScopedApplyLsn(Lsn lsn);
  ~ScopedApplyLsn();
  ScopedApplyLsn(const ScopedApplyLsn&) = delete;
  ScopedApplyLsn& operator=(const ScopedApplyLsn&) = delete;

  /// The replay LSN active on this thread (0 = none).
  static Lsn Current();

 private:
  Lsn prev_;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_MVCC_H_
