// Shared LRU cache of prepared statements, keyed by exact SQL text.
//
// Each entry owns one parse of the statement (with its shared positional-
// parameter block) and, for cacheable SELECTs, the compiled plan. Plans are
// validated lazily against the database's schema version: every DDL
// statement bumps the version, and an execution that finds a cached plan
// built at an older version replans instead of trusting Table/Index
// pointers that DDL may have invalidated.
//
// Execution state is checked out exclusively through `exec_mu` (try_lock):
// concurrent executions of the same statement never share a parameter block
// or a plan — the loser of the race falls back to a fresh, uncached
// parse+plan instead of blocking.

#ifndef XMLRDB_RDB_PLAN_CACHE_H_
#define XMLRDB_RDB_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "rdb/plan.h"
#include "rdb/sql_parser.h"

namespace xmlrdb::rdb {

/// One cached statement. `sql`, `parsed` (the AST itself), `kind` and
/// `cache_plan` are immutable after construction; `plan`, `planned_version`
/// and writes into `parsed.params` are guarded by `exec_mu`.
struct PlanCacheEntry {
  std::string sql;
  ParsedStatement parsed;
  std::string kind;         ///< "select", "insert", ... (statement log)
  bool cache_plan = false;  ///< SELECT over base tables only

  std::mutex exec_mu;  ///< exclusive checkout of the execution state below
  PlanPtr plan;                  ///< cached compiled plan (may be null)
  int64_t planned_version = -1;  ///< schema version `plan` was built at
};

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t invalidations = 0;  ///< cached plans discarded after DDL
  int64_t evictions = 0;      ///< entries dropped by the LRU policy
  int64_t evicted_bytes = 0;  ///< cumulative approximate cost of evictions
};

/// Thread-safe LRU map from SQL text to PlanCacheEntry. Evicted entries stay
/// alive while any PreparedStatement still holds them (shared ownership);
/// they just stop being findable.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 128) : capacity_(capacity) {}
  ~PlanCache();

  /// Returns the entry for `sql` (touching it most-recently-used), or null.
  /// Counts a hit or a miss.
  std::shared_ptr<PlanCacheEntry> Lookup(const std::string& sql);

  /// Inserts `entry` under its sql text and returns the canonical entry: if
  /// another thread inserted the same text first, that earlier entry wins
  /// and `entry` is discarded. With capacity 0 the cache stores nothing and
  /// returns `entry` unchanged (every Prepare is independent).
  std::shared_ptr<PlanCacheEntry> Insert(std::shared_ptr<PlanCacheEntry> entry);

  /// Drops every cached entry (in-flight PreparedStatements keep theirs).
  void Clear();

  size_t size() const;
  size_t capacity() const;
  /// Resizes the cache; shrinking evicts least-recently-used entries.
  /// 0 disables caching entirely.
  void set_capacity(size_t capacity);

  PlanCacheStats stats() const;
  /// Called by the executor when a cached plan is discarded because the
  /// schema version moved underneath it.
  void RecordInvalidation() {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Approximate heap cost of one cached entry (entry struct + SQL text
  /// stored twice: in the entry and as the index key, plus node overhead).
  /// Drives the plancache.bytes resource gauge and evicted_bytes stat.
  static int64_t EntryCostBytes(const PlanCacheEntry& entry) {
    return static_cast<int64_t>(sizeof(PlanCacheEntry) +
                                entry.sql.size() * 2 + 128);
  }

 private:
  void EvictToCapacityLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  /// Most-recently-used at the front.
  std::list<std::shared_ptr<PlanCacheEntry>> lru_;
  std::unordered_map<std::string,
                     std::list<std::shared_ptr<PlanCacheEntry>>::iterator>
      index_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> invalidations_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> evicted_bytes_{0};
  int64_t tracked_bytes_ = 0;  ///< under mu_; this cache's gauge contribution
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_PLAN_CACHE_H_
