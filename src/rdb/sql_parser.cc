#include "rdb/sql_parser.h"

#include "common/str_util.h"
#include "rdb/sql_lexer.h"

namespace xmlrdb::rdb {

namespace {

class SqlParser {
 public:
  explicit SqlParser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    if (IsKeyword("SELECT")) {
      ASSIGN_OR_RETURN(SelectStmt s, ParseSelect());
      RETURN_IF_ERROR(ExpectEnd());
      return Statement(std::move(s));
    }
    if (IsKeyword("EXPLAIN")) {
      Next();
      ExplainStmt e;
      e.analyze = ConsumeKeyword("ANALYZE");
      ASSIGN_OR_RETURN(SelectStmt s, ParseSelect());
      RETURN_IF_ERROR(ExpectEnd());
      e.select = std::make_unique<SelectStmt>(std::move(s));
      return Statement(std::move(e));
    }
    if (IsKeyword("CREATE")) return ParseCreate();
    if (IsKeyword("DROP")) return ParseDrop();
    if (IsKeyword("INSERT")) return ParseInsert();
    if (IsKeyword("DELETE")) return ParseDelete();
    if (IsKeyword("UPDATE")) return ParseUpdate();
    return Err("expected a statement keyword");
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  void Next() { if (pos_ + 1 < toks_.size()) ++pos_; }

  bool IsKeyword(std::string_view kw) const {
    return Cur().kind == TokKind::kIdent && Cur().upper == kw;
  }
  bool IsSymbol(std::string_view sym) const {
    return Cur().kind == TokKind::kSymbol && Cur().text == sym;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (!IsKeyword(kw)) return false;
    Next();
    return true;
  }
  bool ConsumeSymbol(std::string_view sym) {
    if (!IsSymbol(sym)) return false;
    Next();
    return true;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) return Err("expected " + std::string(kw));
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!ConsumeSymbol(sym)) return Err("expected '" + std::string(sym) + "'");
    return Status::OK();
  }
  Status ExpectEnd() {
    ConsumeSymbol(";");
    if (Cur().kind != TokKind::kEnd) return Err("unexpected trailing input");
    return Status::OK();
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError("SQL: " + msg + " near '" + Cur().text +
                              "' (offset " + std::to_string(Cur().offset) + ")");
  }

  Result<std::string> ParseIdent() {
    if (Cur().kind != TokKind::kIdent) return Err("expected identifier");
    std::string out = Cur().text;
    Next();
    return out;
  }

  /// ident or ident.ident.
  Result<std::string> ParseQualifiedName() {
    ASSIGN_OR_RETURN(std::string first, ParseIdent());
    if (ConsumeSymbol(".")) {
      ASSIGN_OR_RETURN(std::string second, ParseIdent());
      return first + "." + second;
    }
    return first;
  }

  static bool IsReserved(const std::string& upper) {
    static const char* kReserved[] = {
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "AND",
        "OR", "NOT", "AS", "ON", "JOIN", "INNER", "BY", "ASC", "DESC", "SELECT",
        "DISTINCT", "SET", "VALUES", "LIKE", "IN", "IS", "NULL", "UNION"};
    for (const char* kw : kReserved) {
      if (upper == kw) return true;
    }
    return false;
  }

  // ---- expressions ----

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (ConsumeKeyword("OR")) {
      ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Bin(BinOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (ConsumeKeyword("AND")) {
      ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Bin(BinOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      return ExprPtr(std::make_unique<NotExpr>(std::move(child)));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    if (IsSymbol("=") || IsSymbol("<>") || IsSymbol("!=") || IsSymbol("<") ||
        IsSymbol("<=") || IsSymbol(">") || IsSymbol(">=")) {
      std::string sym = Cur().text;
      Next();
      ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      BinOp op = BinOp::kEq;
      if (sym == "=") op = BinOp::kEq;
      else if (sym == "<>" || sym == "!=") op = BinOp::kNe;
      else if (sym == "<") op = BinOp::kLt;
      else if (sym == "<=") op = BinOp::kLe;
      else if (sym == ">") op = BinOp::kGt;
      else if (sym == ">=") op = BinOp::kGe;
      return Bin(op, std::move(left), std::move(right));
    }
    if (ConsumeKeyword("LIKE")) {
      if (Cur().kind != TokKind::kString) return Err("expected pattern after LIKE");
      std::string pattern = Cur().text;
      Next();
      return ExprPtr(std::make_unique<LikeExpr>(std::move(left), std::move(pattern)));
    }
    if (ConsumeKeyword("IN")) {
      RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> values;
      while (true) {
        ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
        if (item->kind() != Expr::Kind::kLiteral) {
          return Err("IN list elements must be literals");
        }
        values.push_back(static_cast<LiteralExpr*>(item.get())->value());
        if (ConsumeSymbol(",")) continue;
        RETURN_IF_ERROR(ExpectSymbol(")"));
        break;
      }
      return ExprPtr(std::make_unique<InListExpr>(std::move(left), std::move(values)));
    }
    if (ConsumeKeyword("IS")) {
      bool negated = ConsumeKeyword("NOT");
      RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return ExprPtr(std::make_unique<IsNullExpr>(std::move(left), negated));
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseTerm());
    while (IsSymbol("+") || IsSymbol("-")) {
      BinOp op = IsSymbol("+") ? BinOp::kAdd : BinOp::kSub;
      Next();
      ASSIGN_OR_RETURN(ExprPtr right, ParseTerm());
      left = Bin(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseTerm() {
    ASSIGN_OR_RETURN(ExprPtr left, ParseFactor());
    while (IsSymbol("*") || IsSymbol("/") || IsSymbol("%")) {
      BinOp op = IsSymbol("*") ? BinOp::kMul
                               : (IsSymbol("/") ? BinOp::kDiv : BinOp::kMod);
      Next();
      ASSIGN_OR_RETURN(ExprPtr right, ParseFactor());
      left = Bin(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseFactor() {
    if (IsSymbol("?")) {
      Next();
      if (param_block_ == nullptr) {
        param_block_ = std::make_shared<std::vector<Value>>();
      }
      return ExprPtr(std::make_unique<ParamExpr>(param_count_++, param_block_));
    }
    if (ConsumeSymbol("-")) {
      ASSIGN_OR_RETURN(ExprPtr child, ParseFactor());
      return Bin(BinOp::kSub, Lit(static_cast<int64_t>(0)), std::move(child));
    }
    if (ConsumeSymbol("(")) {
      ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    const Token& t = Cur();
    switch (t.kind) {
      case TokKind::kInt: {
        ASSIGN_OR_RETURN(int64_t v, ParseInt64(t.text));
        Next();
        return Lit(v);
      }
      case TokKind::kDouble: {
        ASSIGN_OR_RETURN(double v, ParseDouble(t.text));
        Next();
        return Lit(Value(v));
      }
      case TokKind::kString: {
        std::string s = t.text;
        Next();
        return Lit(s);
      }
      case TokKind::kIdent: {
        if (t.upper == "NULL") {
          Next();
          return Lit(Value::Null());
        }
        if (t.upper == "TRUE") {
          Next();
          return Lit(Value(true));
        }
        if (t.upper == "FALSE") {
          Next();
          return Lit(Value(false));
        }
        // Aggregate function call?
        if (toks_[pos_ + 1].kind == TokKind::kSymbol &&
            toks_[pos_ + 1].text == "(") {
          std::string fname = t.upper;
          if (fname == "COUNT" || fname == "SUM" || fname == "AVG" ||
              fname == "MIN" || fname == "MAX") {
            Next();  // name
            Next();  // '('
            if (ConsumeSymbol("*")) {
              RETURN_IF_ERROR(ExpectSymbol(")"));
              return ExprPtr(std::make_unique<AggCallExpr>(fname, nullptr));
            }
            ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            RETURN_IF_ERROR(ExpectSymbol(")"));
            return ExprPtr(std::make_unique<AggCallExpr>(fname, std::move(arg)));
          }
          return Err("unknown function '" + t.text + "'");
        }
        ASSIGN_OR_RETURN(std::string name, ParseQualifiedName());
        return Col(std::move(name));
      }
      default:
        return Err("expected expression");
    }
  }

  // ---- SELECT ----

  Result<SelectStmt> ParseSelect() {
    RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStmt stmt;
    stmt.distinct = ConsumeKeyword("DISTINCT");
    while (true) {
      SelectItem item;
      if (ConsumeSymbol("*")) {
        item.star = true;
      } else {
        ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("AS")) {
          ASSIGN_OR_RETURN(item.alias, ParseIdent());
        } else if (Cur().kind == TokKind::kIdent && !IsReserved(Cur().upper)) {
          ASSIGN_OR_RETURN(item.alias, ParseIdent());
        }
      }
      stmt.items.push_back(std::move(item));
      if (!ConsumeSymbol(",")) break;
    }
    RETURN_IF_ERROR(ExpectKeyword("FROM"));
    std::vector<ExprPtr> join_conditions;
    auto parse_table_ref = [&]() -> Result<TableRef> {
      TableRef ref;
      ASSIGN_OR_RETURN(ref.table, ParseIdent());
      if (ConsumeKeyword("AS")) {
        ASSIGN_OR_RETURN(ref.alias, ParseIdent());
      } else if (Cur().kind == TokKind::kIdent && !IsReserved(Cur().upper)) {
        ASSIGN_OR_RETURN(ref.alias, ParseIdent());
      }
      return ref;
    };
    ASSIGN_OR_RETURN(TableRef first, parse_table_ref());
    stmt.from.push_back(std::move(first));
    while (true) {
      if (ConsumeSymbol(",")) {
        ASSIGN_OR_RETURN(TableRef ref, parse_table_ref());
        stmt.from.push_back(std::move(ref));
        continue;
      }
      bool inner = ConsumeKeyword("INNER");
      if (ConsumeKeyword("JOIN")) {
        ASSIGN_OR_RETURN(TableRef ref, parse_table_ref());
        stmt.from.push_back(std::move(ref));
        RETURN_IF_ERROR(ExpectKeyword("ON"));
        ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
        join_conditions.push_back(std::move(cond));
        continue;
      }
      if (inner) return Err("expected JOIN after INNER");
      break;
    }
    if (ConsumeKeyword("WHERE")) {
      ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    for (auto& cond : join_conditions) {
      stmt.where = stmt.where == nullptr
                       ? std::move(cond)
                       : And(std::move(stmt.where), std::move(cond));
    }
    if (ConsumeKeyword("GROUP")) {
      RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
        stmt.group_by.push_back(std::move(g));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("HAVING")) {
      ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) item.ascending = false;
        else ConsumeKeyword("ASC");
        stmt.order_by.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Cur().kind != TokKind::kInt) return Err("expected integer after LIMIT");
      ASSIGN_OR_RETURN(stmt.limit, ParseInt64(Cur().text));
      Next();
      if (ConsumeKeyword("OFFSET")) {
        if (Cur().kind != TokKind::kInt) return Err("expected integer after OFFSET");
        ASSIGN_OR_RETURN(stmt.offset, ParseInt64(Cur().text));
        Next();
      }
    }
    return stmt;
  }

  // ---- DDL / DML ----

  Result<Statement> ParseCreate() {
    Next();  // CREATE
    if (ConsumeKeyword("TABLE")) {
      CreateTableStmt stmt;
      ASSIGN_OR_RETURN(stmt.name, ParseIdent());
      RETURN_IF_ERROR(ExpectSymbol("("));
      while (true) {
        Column col;
        ASSIGN_OR_RETURN(col.name, ParseIdent());
        ASSIGN_OR_RETURN(std::string type_name, ParseIdent());
        ASSIGN_OR_RETURN(col.type, ParseDataType(type_name));
        // Optional length, e.g. VARCHAR(100) — parsed and ignored.
        if (ConsumeSymbol("(")) {
          if (Cur().kind != TokKind::kInt) return Err("expected length");
          Next();
          RETURN_IF_ERROR(ExpectSymbol(")"));
        }
        if (ConsumeKeyword("NOT")) {
          RETURN_IF_ERROR(ExpectKeyword("NULL"));
          col.nullable = false;
        }
        stmt.columns.push_back(std::move(col));
        if (ConsumeSymbol(",")) continue;
        RETURN_IF_ERROR(ExpectSymbol(")"));
        break;
      }
      RETURN_IF_ERROR(ExpectEnd());
      return Statement(std::move(stmt));
    }
    if (ConsumeKeyword("INDEX")) {
      CreateIndexStmt stmt;
      ASSIGN_OR_RETURN(stmt.index, ParseIdent());
      RETURN_IF_ERROR(ExpectKeyword("ON"));
      ASSIGN_OR_RETURN(stmt.table, ParseIdent());
      RETURN_IF_ERROR(ExpectSymbol("("));
      while (true) {
        ASSIGN_OR_RETURN(std::string col, ParseIdent());
        stmt.columns.push_back(std::move(col));
        if (ConsumeSymbol(",")) continue;
        RETURN_IF_ERROR(ExpectSymbol(")"));
        break;
      }
      RETURN_IF_ERROR(ExpectEnd());
      return Statement(std::move(stmt));
    }
    return Err("expected TABLE or INDEX after CREATE");
  }

  Result<Statement> ParseDrop() {
    Next();  // DROP
    RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    DropTableStmt stmt;
    if (ConsumeKeyword("IF")) {
      RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt.if_exists = true;
    }
    ASSIGN_OR_RETURN(stmt.name, ParseIdent());
    RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseInsert() {
    Next();  // INSERT
    RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    ASSIGN_OR_RETURN(stmt.table, ParseIdent());
    RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      while (true) {
        ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
        row.push_back(std::move(v));
        if (ConsumeSymbol(",")) continue;
        RETURN_IF_ERROR(ExpectSymbol(")"));
        break;
      }
      stmt.rows.push_back(std::move(row));
      if (!ConsumeSymbol(",")) break;
    }
    RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    Next();  // DELETE
    RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    ASSIGN_OR_RETURN(stmt.table, ParseIdent());
    if (ConsumeKeyword("WHERE")) {
      ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseUpdate() {
    Next();  // UPDATE
    UpdateStmt stmt;
    ASSIGN_OR_RETURN(stmt.table, ParseIdent());
    RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      ASSIGN_OR_RETURN(std::string col, ParseIdent());
      RETURN_IF_ERROR(ExpectSymbol("="));
      ASSIGN_OR_RETURN(ExprPtr val, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(val));
      if (!ConsumeSymbol(",")) break;
    }
    if (ConsumeKeyword("WHERE")) {
      ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;

 public:
  std::shared_ptr<std::vector<Value>> param_block_;
  size_t param_count_ = 0;
};

}  // namespace

Result<Statement> ParseSql(std::string_view sql) {
  ASSIGN_OR_RETURN(ParsedStatement parsed, ParseSqlWithParams(sql));
  if (parsed.param_count > 0) {
    return Status::InvalidArgument(
        "positional parameters ('?') require a prepared statement "
        "(Database::Prepare)");
  }
  return std::move(parsed.stmt);
}

Result<ParsedStatement> ParseSqlWithParams(std::string_view sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(sql));
  SqlParser parser(std::move(tokens));
  ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());
  ParsedStatement out;
  out.stmt = std::move(stmt);
  out.param_count = parser.param_count_;
  out.params = std::move(parser.param_block_);
  if (out.params != nullptr) out.params->assign(out.param_count, Value::Null());
  return out;
}

}  // namespace xmlrdb::rdb
