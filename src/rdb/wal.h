// Write-ahead log: the redo journal of the durability subsystem.
//
// Every mutation of a durable table — row insert/delete/update, CREATE /
// DROP TABLE, CREATE INDEX — is appended here as a CRC32-framed, LSN-stamped
// record *before* it is applied in memory. Startup recovery replays the log
// over the last checkpoint snapshot (see durability.h); a checkpoint writes
// a fresh snapshot and switches to a new, empty log.
//
// On-disk format
//   header:  "XRDBWAL1" | u32 version (1) | u64 start_lsn          (20 bytes)
//   frame:   u32 crc32(payload) | u32 payload_len | payload
//   payload: u64 lsn | u64 txn | u8 type | type-specific body
// All integers little-endian; strings are u32 length + bytes; rows are a
// u32 count of tagged values. A record with txn = 0 commits by itself; a
// record with txn != 0 belongs to a multi-statement transaction (one shred
// or subtree update) and only takes effect if a kCommit record for that txn
// follows in the log — recovery discards uncommitted transactions, which is
// what makes a document store atomic under mid-shred crashes.
//
// Tail handling: recovery stops cleanly at the first frame whose CRC fails
// *at the end of the log* (a torn append) and the opener truncates the file
// back to the intact prefix. A CRC failure with further data behind it is
// corruption, not a crash artifact, and recovery fails loudly instead.
//
// Fsync policy: kCommit syncs at every commit point (each autocommit record,
// each kCommit record), kBatch syncs once at least batch_bytes have
// accumulated, kNever leaves it to the OS. Any append or sync failure
// poisons the log: every later mutation of a durable table fails with the
// original error, so the in-memory state can never silently run ahead of
// what a recovery could reproduce.

#ifndef XMLRDB_RDB_WAL_H_
#define XMLRDB_RDB_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdb/env.h"
#include "rdb/mvcc.h"  // Lsn — the WAL and the MVCC engine share an LSN space
#include "rdb/schema.h"
#include "rdb/table.h"

namespace xmlrdb::rdb {

class Database;

enum class WalRecordType : uint8_t {
  kCommit = 1,       ///< transaction `txn` is durable
  kInsert = 2,       ///< table, row
  kDelete = 3,       ///< table, row (identified by value)
  kUpdate = 4,       ///< table, old_row -> row
  kCreateTable = 5,  ///< table, columns
  kDropTable = 6,    ///< table
  kCreateIndex = 7,  ///< table, index_name, index_columns
};

struct WalRecord {
  Lsn lsn = 0;
  uint64_t txn = 0;  ///< 0 = self-committing record
  WalRecordType type = WalRecordType::kCommit;
  std::string table;
  Row row;      ///< kInsert/kDelete; kUpdate: the new image
  Row old_row;  ///< kUpdate: the old image
  std::vector<Column> columns;              ///< kCreateTable
  std::string index_name;                   ///< kCreateIndex
  std::vector<std::string> index_columns;   ///< kCreateIndex
};

struct WalOptions {
  enum class SyncPolicy { kNever, kBatch, kCommit };
  SyncPolicy sync_policy = SyncPolicy::kCommit;
  /// kBatch: fsync once this many un-synced bytes have accumulated.
  size_t batch_bytes = 64 * 1024;
};

/// CRC32 (IEEE, reflected) of `data` — exposed for the corruption tests.
uint32_t WalCrc32(std::string_view data);

/// Record body serialization without the frame (exposed for tests).
std::string EncodeWalPayload(const WalRecord& rec);
Result<WalRecord> DecodeWalPayload(std::string_view payload);

struct WalReadResult {
  std::vector<WalRecord> records;  ///< every intact record, in log order
  Lsn next_lsn = 1;                ///< first unused LSN
  bool torn_tail = false;          ///< log ended in a torn (partial) frame
  size_t valid_bytes = 0;          ///< length of the intact prefix
};

/// Parses a log file. An empty file is a clean cold start (no records). A
/// truncated or foreign header, or a bad-CRC frame that is *not* the last
/// thing in the file, is corruption (kIoError).
Result<WalReadResult> ReadWal(Env* env, const std::string& path);

/// The append side of the log. Implements TableMutationSink, so attaching a
/// Wal to a Database (Database::AttachDurability) routes every durable-table
/// mutation through it. Thread-safe; appends from concurrent statements
/// serialize on an internal mutex.
class Wal : public TableMutationSink {
 public:
  /// Creates (truncating) a log file at `path` whose first record will carry
  /// `start_lsn`, syncs the header, and leaves the handle open for append.
  static Result<std::unique_ptr<WritableFile>> CreateLogFile(
      Env* env, const std::string& path, Lsn start_lsn);

  /// Wraps an already-positioned handle (from CreateLogFile, or reopened on
  /// an existing log after recovery validated it).
  Wal(Env* env, std::string path, std::unique_ptr<WritableFile> file,
      WalOptions options, Lsn next_lsn);
  ~Wal() override;

  // -- TableMutationSink --
  Status OnInsert(const Table& table, const Row& row) override;
  Status OnDelete(const Table& table, const Row& row) override;
  Status OnUpdate(const Table& table, const Row& old_row,
                  const Row& new_row) override;
  Status OnCreateIndex(const Table& table, const std::string& name,
                       const std::vector<std::string>& columns) override;

  // -- DDL (called by Database under the exclusive catalog lock) --
  Status LogCreateTable(const std::string& name, const Schema& schema);
  Status LogDropTable(const std::string& name);

  // -- transactions --
  /// The transaction id active on this thread (0 = autocommit).
  static uint64_t CurrentTxn();
  /// Allocates a fresh transaction id and makes it current on this thread.
  uint64_t BeginTxn();
  /// Appends the commit record for `txn` and syncs per policy. Clears the
  /// thread's current transaction.
  Status Commit(uint64_t txn);
  /// Clears the thread's current transaction without committing; the
  /// transaction's records will be discarded by the next recovery.
  static void AbandonTxn();

  /// Forces an fsync regardless of policy.
  Status Sync();

  Lsn next_lsn() const { return next_lsn_.load(std::memory_order_acquire); }
  const std::string& path() const { return path_; }
  const WalOptions& options() const { return options_; }

  /// The sticky health status: OK until the first append/sync I/O error
  /// poisons the log (see file comment). Drives the admin /readyz endpoint.
  Status health() const;

  /// Atomically redirects appends to a new log file (checkpointing). The
  /// caller has quiesced writers; `file` was returned by CreateLogFile.
  void SwapFile(std::unique_ptr<WritableFile> file, std::string path);

 private:
  /// Stamps, frames, appends and policy-syncs one record. `commit_point`
  /// marks records that end a unit of work (autocommit DML, kCommit).
  Status Append(WalRecord rec, bool commit_point);
  Status SyncLocked();

  Env* env_;
  std::string path_;
  WalOptions options_;
  mutable std::mutex mu_;  ///< guards file_, *_bytes_, health_
  std::unique_ptr<WritableFile> file_;
  size_t unsynced_bytes_ = 0;  ///< appended but not yet fsynced (backlog)
  size_t live_bytes_ = 0;      ///< frame bytes in the current log file, i.e.
                               ///< bytes a recovery would replay since the
                               ///< last checkpoint (SwapFile resets it)
  Status health_;  ///< first I/O error, sticky
  std::atomic<Lsn> next_lsn_;
  std::atomic<uint64_t> next_txn_{1};
};

/// RAII scope that groups every durable-table mutation issued on this thread
/// into one WAL transaction — recovery applies it entirely or not at all.
/// The WAL part is a no-op when the database has no WAL, and when a
/// transaction is already active on this thread (the outer scope owns the
/// commit). Holds the database's transaction gate shared for its lifetime so
/// a checkpoint never snapshots mid-transaction (see Database::txn_gate).
///
/// Also scopes an MvccTransaction (WAL or not): snapshot readers see the
/// whole scope's mutations at one commit LSN or not at all. Commit() writes
/// the WAL commit record first, then publishes MVCC visibility; if the scope
/// is abandoned the in-memory partial state is finalized as visible (it is
/// *recovery* that rolls uncommitted WAL transactions back, matching the
/// engine's long-standing in-memory semantics).
class WalTransaction {
 public:
  explicit WalTransaction(Database* db);
  /// Abandons the transaction if Commit was not reached (a crash before the
  /// commit record makes the whole scope invisible to recovery; the
  /// in-memory partial state matches what the failed operation left behind).
  ~WalTransaction();

  Status Commit();

 private:
  Wal* wal_ = nullptr;
  uint64_t txn_ = 0;
  std::shared_lock<std::shared_mutex> gate_;
  MvccTransaction mvcc_;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_WAL_H_
