// Tokenizer for the SQL subset.

#ifndef XMLRDB_RDB_SQL_LEXER_H_
#define XMLRDB_RDB_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xmlrdb::rdb {

enum class TokKind {
  kIdent,     ///< bare identifier (keywords are classified by the parser)
  kString,    ///< 'quoted', quotes stripped, '' unescaped
  kInt,
  kDouble,
  kSymbol,    ///< operator / punctuation, text holds the exact symbol
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;      ///< identifier (original case), string body, number, symbol
  std::string upper;     ///< upper-cased text for keyword matching
  size_t offset = 0;     ///< byte offset in the input, for error messages
};

/// Tokenizes `sql`; the final token is always kEnd.
Result<std::vector<Token>> LexSql(std::string_view sql);

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_SQL_LEXER_H_
