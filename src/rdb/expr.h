// Scalar expressions evaluated against rows or column batches.
//
// Expressions are built by the SQL parser (or programmatically by the XPath
// translators), bound once against an input schema (resolving column names to
// positions), and then evaluated per row (Eval) or over a column batch
// (EvalBatch, used by the vectorized executor; both paths produce identical
// values). Predicates follow SQL three-valued logic internally — comparisons,
// LIKE, IN and NOT propagate NULL, AND/OR short-circuit with NULL absorption
// — and collapse to two-valued logic only at the EvalBool boundary, where
// NULL means "no match".

#ifndef XMLRDB_RDB_EXPR_H_
#define XMLRDB_RDB_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdb/schema.h"
#include "rdb/value.h"

namespace xmlrdb::rdb {

class Batch;

enum class BinOp {
  kEq, kNe, kLt, kLe, kGt, kGe,            // comparisons
  kAdd, kSub, kMul, kDiv, kMod,            // arithmetic
  kAnd, kOr,                               // logic
};

const char* BinOpName(BinOp op);

class Expr {
 public:
  enum class Kind { kColumn, kLiteral, kBinary, kNot, kIsNull, kLike, kInList, kAgg, kParam };

  virtual ~Expr() = default;

  Kind kind() const { return kind_; }

  /// Resolves column references against `schema`. Must be called (again)
  /// whenever the input schema changes.
  virtual Status Bind(const Schema& schema) = 0;

  virtual Result<Value> Eval(const Row& row) const = 0;

  /// Vectorized evaluation: computes this expression for each physical row
  /// index in `rids` of `batch`, writing exactly rids.size() values into
  /// *out (cleared first). Column/literal/comparison/LIKE nodes override
  /// this with tight per-column loops; the base implementation is a
  /// row-compat shim that materializes each row and calls Eval.
  virtual Status EvalBatch(const Batch& batch,
                           const std::vector<uint32_t>& rids,
                           std::vector<Value>* out) const;

  virtual std::unique_ptr<Expr> Clone() const = 0;

  virtual std::string ToString() const = 0;

  /// Appends the names of all referenced columns.
  virtual void CollectColumns(std::vector<std::string>* out) const = 0;

  /// Convenience: evaluate and coerce to a predicate outcome (NULL = false).
  Result<bool> EvalBool(const Row& row) const;

  /// Batch predicate evaluation: appends to *sel_out the rids (in order)
  /// where this expression is true. NULL and false drop the row; non-boolean
  /// results are a TypeError, mirroring EvalBool.
  Status FilterBatch(const Batch& batch, const std::vector<uint32_t>& rids,
                     std::vector<uint32_t>* sel_out) const;

 protected:
  explicit Expr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

using ExprPtr = std::unique_ptr<Expr>;

class ColumnExpr : public Expr {
 public:
  explicit ColumnExpr(std::string name)
      : Expr(Kind::kColumn), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t index() const { return index_; }

  Status Bind(const Schema& schema) override;
  Result<Value> Eval(const Row& row) const override;
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& rids,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override { return std::make_unique<ColumnExpr>(name_); }
  std::string ToString() const override { return name_; }
  void CollectColumns(std::vector<std::string>* out) const override {
    out->push_back(name_);
  }

 private:
  std::string name_;
  size_t index_ = 0;
  bool bound_ = false;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(Kind::kLiteral), value_(std::move(v)) {}

  const Value& value() const { return value_; }

  Status Bind(const Schema&) override { return Status::OK(); }
  Result<Value> Eval(const Row&) const override { return value_; }
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& rids,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override { return std::make_unique<LiteralExpr>(value_); }
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>*) const override {}

 private:
  Value value_;
};

/// A positional `?` placeholder (prepared statements). All clones of a
/// parameter — including the copies the planner embeds into plan operators —
/// share one binding block, so writing `(*block)[index]` before execution
/// re-binds the parameter everywhere without touching the plan tree.
class ParamExpr : public Expr {
 public:
  ParamExpr(size_t index, std::shared_ptr<std::vector<Value>> block)
      : Expr(Kind::kParam), index_(index), block_(std::move(block)) {}

  size_t index() const { return index_; }

  Status Bind(const Schema&) override { return Status::OK(); }
  Result<Value> Eval(const Row&) const override;
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& rids,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override {
    return std::make_unique<ParamExpr>(index_, block_);
  }
  std::string ToString() const override { return "?"; }
  void CollectColumns(std::vector<std::string>*) const override {}

 private:
  size_t index_;
  std::shared_ptr<std::vector<Value>> block_;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinOp op, ExprPtr left, ExprPtr right)
      : Expr(Kind::kBinary), op_(op), left_(std::move(left)),
        right_(std::move(right)) {}

  BinOp op() const { return op_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }
  ExprPtr TakeLeft() { return std::move(left_); }
  ExprPtr TakeRight() { return std::move(right_); }
  void SetLeft(ExprPtr e) { left_ = std::move(e); }
  void SetRight(ExprPtr e) { right_ = std::move(e); }

  Status Bind(const Schema& schema) override;
  Result<Value> Eval(const Row& row) const override;
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& rids,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op_, left_->Clone(), right_->Clone());
  }
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

 private:
  BinOp op_;
  ExprPtr left_, right_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr child) : Expr(Kind::kNot), child_(std::move(child)) {}

  ExprPtr TakeChild() { return std::move(child_); }
  void SetChild(ExprPtr c) { child_ = std::move(c); }
  const Expr* child() const { return child_.get(); }

  Status Bind(const Schema& schema) override { return child_->Bind(schema); }
  Result<Value> Eval(const Row& row) const override;
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& rids,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override {
    return std::make_unique<NotExpr>(child_->Clone());
  }
  std::string ToString() const override {
    return "NOT (" + child_->ToString() + ")";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    child_->CollectColumns(out);
  }

 private:
  ExprPtr child_;
};

class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr child, bool negated)
      : Expr(Kind::kIsNull), child_(std::move(child)), negated_(negated) {}

  ExprPtr TakeChild() { return std::move(child_); }
  void SetChild(ExprPtr c) { child_ = std::move(c); }
  const Expr* child() const { return child_.get(); }

  Status Bind(const Schema& schema) override { return child_->Bind(schema); }
  Result<Value> Eval(const Row& row) const override;
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& rids,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override {
    return std::make_unique<IsNullExpr>(child_->Clone(), negated_);
  }
  std::string ToString() const override {
    return child_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    child_->CollectColumns(out);
  }

 private:
  ExprPtr child_;
  bool negated_;
};

/// SQL LIKE with '%' (any run) and '_' (any one char).
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr child, std::string pattern)
      : Expr(Kind::kLike), child_(std::move(child)), pattern_(std::move(pattern)) {}

  ExprPtr TakeChild() { return std::move(child_); }
  void SetChild(ExprPtr c) { child_ = std::move(c); }
  const Expr* child() const { return child_.get(); }
  const std::string& pattern() const { return pattern_; }

  Status Bind(const Schema& schema) override { return child_->Bind(schema); }
  Result<Value> Eval(const Row& row) const override;
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& rids,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override {
    return std::make_unique<LikeExpr>(child_->Clone(), pattern_);
  }
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override {
    child_->CollectColumns(out);
  }

  /// The LIKE matcher itself (exposed for tests).
  static bool Match(const std::string& text, const std::string& pattern);

 private:
  ExprPtr child_;
  std::string pattern_;
};

/// expr IN (v1, v2, ...) over literal values.
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr child, std::vector<Value> values)
      : Expr(Kind::kInList), child_(std::move(child)), values_(std::move(values)) {}

  ExprPtr TakeChild() { return std::move(child_); }
  void SetChild(ExprPtr c) { child_ = std::move(c); }
  const Expr* child() const { return child_.get(); }
  const std::vector<Value>& values() const { return values_; }

  Status Bind(const Schema& schema) override { return child_->Bind(schema); }
  Result<Value> Eval(const Row& row) const override;
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& rids,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override {
    return std::make_unique<InListExpr>(child_->Clone(), values_);
  }
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override {
    child_->CollectColumns(out);
  }

 private:
  ExprPtr child_;
  std::vector<Value> values_;
};

/// An aggregate function call inside a SQL expression (COUNT/SUM/AVG/MIN/MAX).
/// AggExpr never executes: the planner extracts occurrences into an
/// AggregateNode and replaces them with column references. Evaluating one
/// directly is an internal error.
class AggCallExpr : public Expr {
 public:
  /// `func_name` is the upper-cased function name; `arg` is null for COUNT(*).
  AggCallExpr(std::string func_name, ExprPtr arg)
      : Expr(Kind::kAgg), func_name_(std::move(func_name)), arg_(std::move(arg)) {}

  const std::string& func_name() const { return func_name_; }
  const Expr* arg() const { return arg_.get(); }
  ExprPtr TakeArg() { return std::move(arg_); }

  Status Bind(const Schema&) override {
    return Status::Internal("aggregate '" + func_name_ + "' not extracted");
  }
  Result<Value> Eval(const Row&) const override {
    return Status::Internal("aggregate '" + func_name_ + "' evaluated directly");
  }
  ExprPtr Clone() const override {
    return std::make_unique<AggCallExpr>(func_name_,
                                         arg_ ? arg_->Clone() : nullptr);
  }
  std::string ToString() const override {
    return func_name_ + "(" + (arg_ ? arg_->ToString() : "*") + ")";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    if (arg_) arg_->CollectColumns(out);
  }

 private:
  std::string func_name_;
  ExprPtr arg_;
};

// ---- Builder helpers (used heavily by the XPath translators) ----

ExprPtr Col(std::string name);
ExprPtr Lit(Value v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(const std::string& v);
ExprPtr Bin(BinOp op, ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
/// And() of all conjuncts; null when the list is empty.
ExprPtr AndAll(std::vector<ExprPtr> conjuncts);

/// Splits nested ANDs into a conjunct list (consumes the expression).
void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out);

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_EXPR_H_
