#include "rdb/wal.h"

#include <array>
#include <cstring>
#include <utility>

#include "common/metrics.h"
#include "common/resource_tracker.h"
#include "rdb/database.h"

namespace xmlrdb::rdb {

namespace {

ResourceGauge& LiveBytesGauge() {
  static ResourceGauge& g =
      ResourceTracker::Global().GetGauge("wal.live_bytes");
  return g;
}

ResourceGauge& UnsyncedBytesGauge() {
  static ResourceGauge& g =
      ResourceTracker::Global().GetGauge("wal.unsynced_bytes");
  return g;
}

constexpr char kWalMagic[8] = {'X', 'R', 'D', 'B', 'W', 'A', 'L', '1'};
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderSize = 8 + 4 + 8;
constexpr size_t kFrameOverhead = 4 + 4;  // crc + len

thread_local uint64_t tls_current_txn = 0;

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// -- little-endian primitives --

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kInt:
      PutU64(out, static_cast<uint64_t>(v.AsInt()));
      break;
    case DataType::kDouble: {
      uint64_t bits = 0;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case DataType::kString:
      PutString(out, v.AsString());
      break;
    case DataType::kBool:
      PutU8(out, v.AsBool() ? 1 : 0);
      break;
  }
}

void PutRow(std::string* out, const Row& row) {
  PutU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) PutValue(out, v);
}

/// Bounds-checked little-endian reader over a payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::string String() {
    const uint32_t len = U32();
    if (!Need(len)) return {};
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  Value ReadValue() {
    switch (static_cast<DataType>(U8())) {
      case DataType::kNull:
        return Value::Null();
      case DataType::kInt:
        return Value(static_cast<int64_t>(U64()));
      case DataType::kDouble: {
        const uint64_t bits = U64();
        double d = 0;
        std::memcpy(&d, &bits, sizeof(d));
        return Value(d);
      }
      case DataType::kString:
        return Value(String());
      case DataType::kBool:
        return Value(U8() != 0);
      default:
        ok_ = false;
        return Value::Null();
    }
  }

  Row ReadRow() {
    const uint32_t n = U32();
    Row row;
    for (uint32_t i = 0; i < n && ok_; ++i) row.push_back(ReadValue());
    return row;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

uint32_t ReadU32At(std::string_view data, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[pos + i])) << (8 * i);
  }
  return v;
}

uint64_t ReadU64At(std::string_view data, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[pos + i])) << (8 * i);
  }
  return v;
}

std::string EncodeHeader(Lsn start_lsn) {
  std::string h(kWalMagic, sizeof(kWalMagic));
  PutU32(&h, kWalVersion);
  PutU64(&h, start_lsn);
  return h;
}

}  // namespace

uint32_t WalCrc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeWalPayload(const WalRecord& rec) {
  std::string p;
  PutU64(&p, rec.lsn);
  PutU64(&p, rec.txn);
  PutU8(&p, static_cast<uint8_t>(rec.type));
  switch (rec.type) {
    case WalRecordType::kCommit:
      break;
    case WalRecordType::kInsert:
    case WalRecordType::kDelete:
      PutString(&p, rec.table);
      PutRow(&p, rec.row);
      break;
    case WalRecordType::kUpdate:
      PutString(&p, rec.table);
      PutRow(&p, rec.old_row);
      PutRow(&p, rec.row);
      break;
    case WalRecordType::kCreateTable:
      PutString(&p, rec.table);
      PutU32(&p, static_cast<uint32_t>(rec.columns.size()));
      for (const Column& c : rec.columns) {
        PutString(&p, c.name);
        PutU8(&p, static_cast<uint8_t>(c.type));
        PutU8(&p, c.nullable ? 1 : 0);
      }
      break;
    case WalRecordType::kDropTable:
      PutString(&p, rec.table);
      break;
    case WalRecordType::kCreateIndex:
      PutString(&p, rec.table);
      PutString(&p, rec.index_name);
      PutU32(&p, static_cast<uint32_t>(rec.index_columns.size()));
      for (const std::string& c : rec.index_columns) PutString(&p, c);
      break;
  }
  return p;
}

Result<WalRecord> DecodeWalPayload(std::string_view payload) {
  Reader r(payload);
  WalRecord rec;
  rec.lsn = r.U64();
  rec.txn = r.U64();
  const uint8_t type = r.U8();
  if (type < 1 || type > 7) {
    return Status::IoError("WAL record with unknown type " +
                           std::to_string(type));
  }
  rec.type = static_cast<WalRecordType>(type);
  switch (rec.type) {
    case WalRecordType::kCommit:
      break;
    case WalRecordType::kInsert:
    case WalRecordType::kDelete:
      rec.table = r.String();
      rec.row = r.ReadRow();
      break;
    case WalRecordType::kUpdate:
      rec.table = r.String();
      rec.old_row = r.ReadRow();
      rec.row = r.ReadRow();
      break;
    case WalRecordType::kCreateTable: {
      rec.table = r.String();
      const uint32_t n = r.U32();
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        Column c;
        c.name = r.String();
        c.type = static_cast<DataType>(r.U8());
        c.nullable = r.U8() != 0;
        rec.columns.push_back(std::move(c));
      }
      break;
    }
    case WalRecordType::kDropTable:
      rec.table = r.String();
      break;
    case WalRecordType::kCreateIndex: {
      rec.table = r.String();
      rec.index_name = r.String();
      const uint32_t n = r.U32();
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        rec.index_columns.push_back(r.String());
      }
      break;
    }
  }
  if (!r.ok() || !r.AtEnd()) {
    return Status::IoError("malformed WAL record payload");
  }
  return rec;
}

Result<WalReadResult> ReadWal(Env* env, const std::string& path) {
  WalReadResult result;
  if (!env->FileExists(path)) return result;  // missing log = cold start
  ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  if (data.empty()) return result;  // empty log = cold start
  if (data.size() < kHeaderSize) {
    return Status::IoError("truncated WAL header in " + path);
  }
  if (std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::IoError(path + " is not a WAL file (bad magic)");
  }
  const uint32_t version = ReadU32At(data, sizeof(kWalMagic));
  if (version != kWalVersion) {
    return Status::IoError("unsupported WAL version " +
                           std::to_string(version) + " in " + path);
  }
  result.next_lsn = ReadU64At(data, sizeof(kWalMagic) + 4);
  result.valid_bytes = kHeaderSize;

  size_t pos = kHeaderSize;
  while (pos < data.size()) {
    // A frame that does not fit in the remaining bytes is a torn append
    // only if it is the last thing in the file — which it is by definition
    // when we run out of bytes mid-frame.
    if (data.size() - pos < kFrameOverhead) {
      result.torn_tail = true;
      return result;
    }
    const uint32_t crc = ReadU32At(data, pos);
    const uint32_t len = ReadU32At(data, pos + 4);
    if (data.size() - pos - kFrameOverhead < len) {
      result.torn_tail = true;
      return result;
    }
    const std::string_view payload(data.data() + pos + kFrameOverhead, len);
    if (WalCrc32(payload) != crc) {
      if (pos + kFrameOverhead + len == data.size()) {
        // Bad CRC on the final frame: a torn append of the right length.
        result.torn_tail = true;
        return result;
      }
      return Status::IoError(
          "WAL corruption in " + path + ": bad record checksum at offset " +
          std::to_string(pos) + " with " +
          std::to_string(data.size() - pos - kFrameOverhead - len) +
          " bytes of log after it");
    }
    auto rec = DecodeWalPayload(payload);
    if (!rec.ok()) {
      // The frame passed its CRC but does not parse — written by a buggy or
      // newer engine, not torn by a crash. Never silently drop it.
      return rec.status();
    }
    result.records.push_back(std::move(rec.value()));
    result.next_lsn = result.records.back().lsn + 1;
    pos += kFrameOverhead + len;
    result.valid_bytes = pos;
  }
  return result;
}

Result<std::unique_ptr<WritableFile>> Wal::CreateLogFile(
    Env* env, const std::string& path, Lsn start_lsn) {
  ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                   env->NewWritableFile(path, /*truncate=*/true));
  RETURN_IF_ERROR(file->Append(EncodeHeader(start_lsn)));
  RETURN_IF_ERROR(file->Sync());
  return file;
}

Wal::Wal(Env* env, std::string path, std::unique_ptr<WritableFile> file,
         WalOptions options, Lsn next_lsn)
    : env_(env),
      path_(std::move(path)),
      options_(options),
      file_(std::move(file)),
      next_lsn_(next_lsn) {}

Wal::~Wal() {
  std::lock_guard<std::mutex> lock(mu_);
  LiveBytesGauge().Add(-static_cast<int64_t>(live_bytes_));
  UnsyncedBytesGauge().Add(-static_cast<int64_t>(unsynced_bytes_));
}

Status Wal::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

Status Wal::Append(WalRecord rec, bool commit_point) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(health_);
  rec.lsn = next_lsn_.load(std::memory_order_relaxed);

  std::string frame;
  {
    const std::string payload = EncodeWalPayload(rec);
    PutU32(&frame, WalCrc32(payload));
    PutU32(&frame, static_cast<uint32_t>(payload.size()));
    frame += payload;
  }

  Status s = env_->CrashPoint("wal.before_append");
  if (s.ok()) s = file_->Append(frame);
  if (s.ok()) s = env_->CrashPoint("wal.after_append");
  if (!s.ok()) {
    health_ = s;  // poison: memory must not run ahead of the log
    return s;
  }
  next_lsn_.store(rec.lsn + 1, std::memory_order_release);
  // Commit LSNs must stay above every record LSN so MVCC stamps of a
  // transaction always exceed the LSNs of its WAL records.
  MvccEngine::Global().EnsureNextAbove(rec.lsn);
  unsynced_bytes_ += frame.size();
  live_bytes_ += frame.size();
  LiveBytesGauge().Add(static_cast<int64_t>(frame.size()));
  UnsyncedBytesGauge().Add(static_cast<int64_t>(frame.size()));

  auto& metrics = MetricsRegistry::Global();
  metrics.Add("wal.appends", 1);
  metrics.Add("wal.bytes", static_cast<int64_t>(frame.size()));
  if (commit_point) metrics.Add("wal.commits", 1);

  const bool want_sync =
      (options_.sync_policy == WalOptions::SyncPolicy::kCommit &&
       commit_point) ||
      (options_.sync_policy == WalOptions::SyncPolicy::kBatch &&
       unsynced_bytes_ >= options_.batch_bytes);
  if (want_sync) {
    s = SyncLocked();
    if (!s.ok()) {
      health_ = s;
      return s;
    }
  }
  return Status::OK();
}

Status Wal::SyncLocked() {
  if (unsynced_bytes_ == 0) return Status::OK();
  RETURN_IF_ERROR(file_->Sync());
  RETURN_IF_ERROR(env_->CrashPoint("wal.after_sync"));
  UnsyncedBytesGauge().Add(-static_cast<int64_t>(unsynced_bytes_));
  unsynced_bytes_ = 0;
  MetricsRegistry::Global().Add("wal.fsyncs", 1);
  return Status::OK();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(health_);
  Status s = SyncLocked();
  if (!s.ok()) health_ = s;
  return s;
}

Status Wal::OnInsert(const Table& table, const Row& row) {
  WalRecord rec;
  rec.txn = tls_current_txn;
  rec.type = WalRecordType::kInsert;
  rec.table = table.name();
  rec.row = row;
  const bool autocommit = rec.txn == 0;
  return Append(std::move(rec), /*commit_point=*/autocommit);
}

Status Wal::OnDelete(const Table& table, const Row& row) {
  WalRecord rec;
  rec.txn = tls_current_txn;
  rec.type = WalRecordType::kDelete;
  rec.table = table.name();
  rec.row = row;
  const bool autocommit = rec.txn == 0;
  return Append(std::move(rec), /*commit_point=*/autocommit);
}

Status Wal::OnUpdate(const Table& table, const Row& old_row,
                     const Row& new_row) {
  WalRecord rec;
  rec.txn = tls_current_txn;
  rec.type = WalRecordType::kUpdate;
  rec.table = table.name();
  rec.old_row = old_row;
  rec.row = new_row;
  const bool autocommit = rec.txn == 0;
  return Append(std::move(rec), /*commit_point=*/autocommit);
}

Status Wal::OnCreateIndex(const Table& table, const std::string& name,
                          const std::vector<std::string>& columns) {
  // DDL always self-commits (txn 0): replay applies it at its log position,
  // so a table created mid-shred exists for every later committed record
  // regardless of which transactions around it committed.
  WalRecord rec;
  rec.type = WalRecordType::kCreateIndex;
  rec.table = table.name();
  rec.index_name = name;
  rec.index_columns = columns;
  return Append(std::move(rec), /*commit_point=*/true);
}

Status Wal::LogCreateTable(const std::string& name, const Schema& schema) {
  WalRecord rec;
  rec.type = WalRecordType::kCreateTable;
  rec.table = name;
  rec.columns = schema.columns();
  return Append(std::move(rec), /*commit_point=*/true);
}

Status Wal::LogDropTable(const std::string& name) {
  WalRecord rec;
  rec.type = WalRecordType::kDropTable;
  rec.table = name;
  return Append(std::move(rec), /*commit_point=*/true);
}

uint64_t Wal::CurrentTxn() { return tls_current_txn; }

uint64_t Wal::BeginTxn() {
  const uint64_t txn = next_txn_.fetch_add(1, std::memory_order_relaxed);
  tls_current_txn = txn;
  return txn;
}

Status Wal::Commit(uint64_t txn) {
  tls_current_txn = 0;
  WalRecord rec;
  rec.txn = txn;
  rec.type = WalRecordType::kCommit;
  return Append(std::move(rec), /*commit_point=*/true);
}

void Wal::AbandonTxn() { tls_current_txn = 0; }

void Wal::SwapFile(std::unique_ptr<WritableFile> file, std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  file_->Close();
  file_ = std::move(file);
  path_ = std::move(path);
  LiveBytesGauge().Add(-static_cast<int64_t>(live_bytes_));
  UnsyncedBytesGauge().Add(-static_cast<int64_t>(unsynced_bytes_));
  live_bytes_ = 0;
  unsynced_bytes_ = 0;
  health_ = Status::OK();
}

WalTransaction::WalTransaction(Database* db) {
  Wal* wal = db != nullptr ? db->wal() : nullptr;
  if (wal == nullptr || Wal::CurrentTxn() != 0) return;  // outer scope owns it
  gate_ = std::shared_lock<std::shared_mutex>(db->txn_gate());
  wal_ = wal;
  txn_ = wal_->BeginTxn();
}

WalTransaction::~WalTransaction() {
  if (wal_ != nullptr && txn_ != 0) Wal::AbandonTxn();
}

Status WalTransaction::Commit() {
  // Durability first, visibility second: the WAL commit record is appended
  // (and synced per policy) before snapshot readers can observe the scope.
  Status s = Status::OK();
  if (wal_ != nullptr && txn_ != 0) {
    const uint64_t txn = txn_;
    txn_ = 0;
    s = wal_->Commit(txn);
  }
  mvcc_.Commit();
  return s;
}

}  // namespace xmlrdb::rdb
