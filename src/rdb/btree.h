// In-memory B+-tree over composite-Value keys.
//
// The tree stores *unique* Rows ordered by CompareRows. The index layer
// (table.h) achieves duplicate key support by appending the row id as the
// last key component. Leaves are chained for range scans; bounds use prefix
// comparison so a scan over the first k key components is a single range.
//
// Deletion removes the entry from its leaf without rebalancing ("lazy
// deletion"); pages only merge on rebuild. This matches how several real
// engines defer structure maintenance and keeps scans correct at all times.

#ifndef XMLRDB_RDB_BTREE_H_
#define XMLRDB_RDB_BTREE_H_

#include <memory>
#include <vector>

#include "rdb/value.h"

namespace xmlrdb::rdb {

/// Compares only the first `prefix.size()` components of `key` against
/// `prefix` (key must have at least that many components).
int PrefixCompareRows(const Row& key, const Row& prefix);

class BTree {
 public:
  /// `max_keys` is the fanout knob (entries per node before split).
  explicit BTree(size_t max_keys = 64);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts a key. Returns false (and leaves the tree unchanged) if an
  /// equal key is already present.
  bool Insert(Row key);

  /// Removes an exactly-equal key. Returns false if absent.
  bool Erase(const Row& key);

  /// True if an exactly-equal key is present.
  bool Contains(const Row& key) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (1 = a single leaf).
  size_t height() const { return height_; }

  /// Forward iterator over keys in order, starting at the first key whose
  /// `prefix`-length prefix is >= / > the given bound.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    const Row& key() const;
    void Next();

   private:
    friend class BTree;
    const void* leaf_ = nullptr;  // LeafNode*
    size_t pos_ = 0;
  };

  /// Iterator at the smallest key.
  Iterator Begin() const;

  /// Iterator at the first key whose prefix compares >= `bound`
  /// (or > if `inclusive` is false).
  Iterator SeekAtLeast(const Row& bound, bool inclusive = true) const;

  /// Verifies ordering + structural invariants; used by property tests.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  LeafNode* FindLeaf(const Row& key) const;

  Node* root_;
  size_t max_keys_;
  size_t size_ = 0;
  size_t height_ = 1;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_BTREE_H_
