// Env: the small VFS seam between the durability subsystem and the host
// filesystem.
//
// Everything the WAL, snapshot persistence and checkpointing do to disk goes
// through an Env — append-only writable files with explicit Sync (fsync),
// whole-file reads, and the handful of metadata operations (create dirs,
// list, remove, atomic rename) the checkpoint protocol needs. The default
// Env is a thin POSIX/std::filesystem implementation; tests substitute
// FaultInjectionEnv (fault_env.h), an in-memory filesystem that models the
// synced-vs-unsynced distinction, injects write failures, and simulates
// process crashes at named crash points.
//
// Crash points: durability-critical code calls env->CrashPoint("name") at
// the instants a real crash would be interesting (after a WAL append, between
// the two halves of a checkpoint, ...). The default Env treats these as
// no-ops; FaultInjectionEnv records every name it sees and, when armed, turns
// one into a simulated crash — from then on all I/O fails and unsynced data
// is gone, exactly like a killed process.

#ifndef XMLRDB_RDB_ENV_H_
#define XMLRDB_RDB_ENV_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xmlrdb::rdb {

/// An append-only file handle. Writes become durable only after Sync().
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Makes everything appended so far survive a crash (fsync).
  virtual Status Sync() = 0;

  /// Flushes buffers and closes the handle. Idempotent; called by the
  /// destructor if not called explicitly (errors then silently dropped).
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending; `truncate` empties any existing file first.
  /// The parent directory must exist.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the whole file into a string.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Creates `path` and any missing parents (mkdir -p; ok if present).
  virtual Status CreateDirs(const std::string& path) = 0;

  /// Names (not full paths) of the entries directly under `path`.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics). This is
  /// the commit primitive of the checkpoint protocol.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Removes `path` and everything under it. Ok if absent.
  virtual Status RemoveDirRecursive(const std::string& path) = 0;

  /// Durability crash hook; see the header comment. Returns an error only
  /// when a fault-injection Env decided to "crash" here — callers propagate
  /// it like any I/O failure.
  virtual Status CrashPoint(const std::string& name) {
    (void)name;
    return Status::OK();
  }

  /// The process-wide POSIX Env.
  static Env* Default();
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_ENV_H_
