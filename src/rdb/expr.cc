#include "rdb/expr.h"

#include <cmath>

#include "common/str_util.h"

namespace xmlrdb::rdb {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

Result<bool> Expr::EvalBool(const Row& row) const {
  ASSIGN_OR_RETURN(Value v, Eval(row));
  if (v.is_null()) return false;
  if (v.type() == DataType::kBool) return v.AsBool();
  if (v.type() == DataType::kInt) return v.AsInt() != 0;
  return Status::TypeError("predicate evaluated to non-boolean " + v.ToString());
}

Status ColumnExpr::Bind(const Schema& schema) {
  ASSIGN_OR_RETURN(index_, schema.IndexOf(name_));
  bound_ = true;
  return Status::OK();
}

Result<Value> ColumnExpr::Eval(const Row& row) const {
  if (!bound_) return Status::Internal("unbound column '" + name_ + "'");
  if (index_ >= row.size()) {
    return Status::Internal("column index out of range for '" + name_ + "'");
  }
  return row[index_];
}

std::string LiteralExpr::ToString() const {
  if (value_.type() == DataType::kString) return SqlQuote(value_.AsString());
  return value_.ToString();
}

Result<Value> ParamExpr::Eval(const Row&) const {
  if (block_ == nullptr || index_ >= block_->size()) {
    return Status::Internal("parameter " + std::to_string(index_ + 1) +
                            " not bound");
  }
  return (*block_)[index_];
}

Status BinaryExpr::Bind(const Schema& schema) {
  RETURN_IF_ERROR(left_->Bind(schema));
  return right_->Bind(schema);
}

namespace {

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
    case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

Result<Value> EvalArithmetic(BinOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  bool l_num = l.type() == DataType::kInt || l.type() == DataType::kDouble;
  bool r_num = r.type() == DataType::kInt || r.type() == DataType::kDouble;
  if (op == BinOp::kAdd && l.type() == DataType::kString &&
      r.type() == DataType::kString) {
    return Value(l.AsString() + r.AsString());  // string concatenation
  }
  if (!l_num || !r_num) {
    return Status::TypeError(std::string("arithmetic on ") +
                             DataTypeName(l.type()) + " and " +
                             DataTypeName(r.type()));
  }
  bool both_int = l.type() == DataType::kInt && r.type() == DataType::kInt;
  if (both_int) {
    int64_t a = l.AsInt(), b = r.AsInt();
    switch (op) {
      case BinOp::kAdd: return Value(a + b);
      case BinOp::kSub: return Value(a - b);
      case BinOp::kMul: return Value(a * b);
      case BinOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value(a / b);
      case BinOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Value(a % b);
      default: break;
    }
  }
  double a = l.AsDouble(), b = r.AsDouble();
  switch (op) {
    case BinOp::kAdd: return Value(a + b);
    case BinOp::kSub: return Value(a - b);
    case BinOp::kMul: return Value(a * b);
    case BinOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value(a / b);
    case BinOp::kMod:
      return Value(std::fmod(a, b));
    default:
      break;
  }
  return Status::Internal("unhandled arithmetic op");
}

}  // namespace

Result<Value> BinaryExpr::Eval(const Row& row) const {
  if (op_ == BinOp::kAnd || op_ == BinOp::kOr) {
    // Short-circuit.
    ASSIGN_OR_RETURN(bool l, left_->EvalBool(row));
    if (op_ == BinOp::kAnd && !l) return Value(false);
    if (op_ == BinOp::kOr && l) return Value(true);
    ASSIGN_OR_RETURN(bool r, right_->EvalBool(row));
    return Value(r);
  }
  ASSIGN_OR_RETURN(Value l, left_->Eval(row));
  ASSIGN_OR_RETURN(Value r, right_->Eval(row));
  if (IsComparison(op_)) {
    if (l.is_null() || r.is_null()) return Value(false);
    // Numeric-vs-string comparisons attempt a numeric parse of the string so
    // predicates like value > 100 work against string-typed value columns
    // (common in edge/binary shredded tables).
    if ((l.type() == DataType::kString) !=
        (r.type() == DataType::kString)) {
      const Value& sv = l.type() == DataType::kString ? l : r;
      auto parsed = ParseDouble(sv.AsString());
      if (!parsed.ok()) return Value(false);
      Value num(parsed.value());
      if (l.type() == DataType::kString) l = num; else r = num;
    }
    int c = l.Compare(r);
    switch (op_) {
      case BinOp::kEq: return Value(c == 0);
      case BinOp::kNe: return Value(c != 0);
      case BinOp::kLt: return Value(c < 0);
      case BinOp::kLe: return Value(c <= 0);
      case BinOp::kGt: return Value(c > 0);
      case BinOp::kGe: return Value(c >= 0);
      default: break;
    }
  }
  return EvalArithmetic(op_, l, r);
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinOpName(op_) + " " +
         right_->ToString() + ")";
}

Result<Value> NotExpr::Eval(const Row& row) const {
  ASSIGN_OR_RETURN(bool v, child_->EvalBool(row));
  return Value(!v);
}

Result<Value> IsNullExpr::Eval(const Row& row) const {
  ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  return Value(negated_ ? !v.is_null() : v.is_null());
}

bool LikeExpr::Match(const std::string& text, const std::string& pattern) {
  // Iterative wildcard matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> LikeExpr::Eval(const Row& row) const {
  ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  if (v.is_null()) return Value(false);
  if (v.type() != DataType::kString) {
    return Status::TypeError("LIKE applied to " +
                             std::string(DataTypeName(v.type())));
  }
  return Value(Match(v.AsString(), pattern_));
}

std::string LikeExpr::ToString() const {
  return child_->ToString() + " LIKE " + SqlQuote(pattern_);
}

Result<Value> InListExpr::Eval(const Row& row) const {
  ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  if (v.is_null()) return Value(false);
  for (const Value& cand : values_) {
    if (v.Compare(cand) == 0) return Value(true);
  }
  return Value(false);
}

std::string InListExpr::ToString() const {
  std::string out = child_->ToString() + " IN (";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].type() == DataType::kString ? SqlQuote(values_[i].AsString())
                                                  : values_[i].ToString();
  }
  return out + ")";
}

ExprPtr Col(std::string name) { return std::make_unique<ColumnExpr>(std::move(name)); }
ExprPtr Lit(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr Lit(int64_t v) { return std::make_unique<LiteralExpr>(Value(v)); }
ExprPtr Lit(const std::string& v) { return std::make_unique<LiteralExpr>(Value(v)); }
ExprPtr Bin(BinOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(op, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) { return Bin(BinOp::kEq, std::move(l), std::move(r)); }
ExprPtr And(ExprPtr l, ExprPtr r) {
  return Bin(BinOp::kAnd, std::move(l), std::move(r));
}

ExprPtr AndAll(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (auto& c : conjuncts) {
    out = out == nullptr ? std::move(c) : And(std::move(out), std::move(c));
  }
  return out;
}

void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == Expr::Kind::kBinary) {
    auto* bin = static_cast<BinaryExpr*>(expr.get());
    if (bin->op() == BinOp::kAnd) {
      SplitConjuncts(bin->TakeLeft(), out);
      SplitConjuncts(bin->TakeRight(), out);
      return;
    }
  }
  out->push_back(std::move(expr));
}

}  // namespace xmlrdb::rdb
