#include "rdb/expr.h"

#include <cmath>
#include <optional>

#include "common/str_util.h"
#include "rdb/batch.h"

namespace xmlrdb::rdb {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

namespace {

/// Predicate coercion for non-NULL values (shared by EvalBool, FilterBatch
/// and the AND/OR logic): bool as-is, int != 0, anything else a TypeError.
Status CoerceBool(const Value& v, bool* out) {
  if (v.type() == DataType::kBool) {
    *out = v.AsBool();
    return Status::OK();
  }
  if (v.type() == DataType::kInt) {
    *out = v.AsInt() != 0;
    return Status::OK();
  }
  return Status::TypeError("predicate evaluated to non-boolean " + v.ToString());
}

}  // namespace

Result<bool> Expr::EvalBool(const Row& row) const {
  ASSIGN_OR_RETURN(Value v, Eval(row));
  if (v.is_null()) return false;
  bool b = false;
  RETURN_IF_ERROR(CoerceBool(v, &b));
  return b;
}

Status Expr::EvalBatch(const Batch& batch, const std::vector<uint32_t>& rids,
                       std::vector<Value>* out) const {
  // Row-compat shim: operators and expression kinds that have no vectorized
  // form fall back to per-row evaluation over materialized rows.
  out->clear();
  out->reserve(rids.size());
  for (uint32_t rid : rids) {
    Row scratch = batch.MaterializeRow(rid);
    ASSIGN_OR_RETURN(Value v, Eval(scratch));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

Status Expr::FilterBatch(const Batch& batch, const std::vector<uint32_t>& rids,
                         std::vector<uint32_t>* sel_out) const {
  std::vector<Value> vals;
  RETURN_IF_ERROR(EvalBatch(batch, rids, &vals));
  for (size_t i = 0; i < rids.size(); ++i) {
    if (vals[i].is_null()) continue;  // NULL = no match, like EvalBool
    bool b = false;
    RETURN_IF_ERROR(CoerceBool(vals[i], &b));
    if (b) sel_out->push_back(rids[i]);
  }
  return Status::OK();
}

Status ColumnExpr::Bind(const Schema& schema) {
  ASSIGN_OR_RETURN(index_, schema.IndexOf(name_));
  bound_ = true;
  return Status::OK();
}

Result<Value> ColumnExpr::Eval(const Row& row) const {
  if (!bound_) return Status::Internal("unbound column '" + name_ + "'");
  if (index_ >= row.size()) {
    return Status::Internal("column index out of range for '" + name_ + "'");
  }
  return row[index_];
}

Status ColumnExpr::EvalBatch(const Batch& batch,
                             const std::vector<uint32_t>& rids,
                             std::vector<Value>* out) const {
  if (!bound_) return Status::Internal("unbound column '" + name_ + "'");
  if (index_ >= batch.num_columns()) {
    return Status::Internal("column index out of range for '" + name_ + "'");
  }
  const std::vector<Value>& col = batch.column(index_);
  out->clear();
  out->reserve(rids.size());
  for (uint32_t rid : rids) out->push_back(col[rid]);
  return Status::OK();
}

Status LiteralExpr::EvalBatch(const Batch&, const std::vector<uint32_t>& rids,
                              std::vector<Value>* out) const {
  out->assign(rids.size(), value_);
  return Status::OK();
}

Status ParamExpr::EvalBatch(const Batch&, const std::vector<uint32_t>& rids,
                            std::vector<Value>* out) const {
  if (block_ == nullptr || index_ >= block_->size()) {
    return Status::Internal("parameter " + std::to_string(index_ + 1) +
                            " not bound");
  }
  out->assign(rids.size(), (*block_)[index_]);
  return Status::OK();
}

std::string LiteralExpr::ToString() const {
  if (value_.type() == DataType::kString) return SqlQuote(value_.AsString());
  return value_.ToString();
}

Result<Value> ParamExpr::Eval(const Row&) const {
  if (block_ == nullptr || index_ >= block_->size()) {
    return Status::Internal("parameter " + std::to_string(index_ + 1) +
                            " not bound");
  }
  return (*block_)[index_];
}

Status BinaryExpr::Bind(const Schema& schema) {
  RETURN_IF_ERROR(left_->Bind(schema));
  return right_->Bind(schema);
}

namespace {

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
    case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

Result<Value> EvalArithmetic(BinOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  bool l_num = l.type() == DataType::kInt || l.type() == DataType::kDouble;
  bool r_num = r.type() == DataType::kInt || r.type() == DataType::kDouble;
  if (op == BinOp::kAdd && l.type() == DataType::kString &&
      r.type() == DataType::kString) {
    return Value(l.AsString() + r.AsString());  // string concatenation
  }
  if (!l_num || !r_num) {
    return Status::TypeError(std::string("arithmetic on ") +
                             DataTypeName(l.type()) + " and " +
                             DataTypeName(r.type()));
  }
  bool both_int = l.type() == DataType::kInt && r.type() == DataType::kInt;
  if (both_int) {
    int64_t a = l.AsInt(), b = r.AsInt();
    switch (op) {
      case BinOp::kAdd: return Value(a + b);
      case BinOp::kSub: return Value(a - b);
      case BinOp::kMul: return Value(a * b);
      case BinOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value(a / b);
      case BinOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Value(a % b);
      default: break;
    }
  }
  double a = l.AsDouble(), b = r.AsDouble();
  switch (op) {
    case BinOp::kAdd: return Value(a + b);
    case BinOp::kSub: return Value(a - b);
    case BinOp::kMul: return Value(a * b);
    case BinOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value(a / b);
    case BinOp::kMod:
      return Value(std::fmod(a, b));
    default:
      break;
  }
  return Status::Internal("unhandled arithmetic op");
}

/// SQL comparison with NULL propagation. Numeric-vs-string comparisons
/// attempt a numeric parse of the string so predicates like value > 100 work
/// against string-typed value columns (common in edge/binary shredded
/// tables); unparsable strings never match.
Result<Value> EvalComparison(BinOp op, Value l, Value r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if ((l.type() == DataType::kString) != (r.type() == DataType::kString)) {
    const Value& sv = l.type() == DataType::kString ? l : r;
    auto parsed = ParseDouble(sv.AsString());
    if (!parsed.ok()) return Value(false);
    Value num(parsed.value());
    if (l.type() == DataType::kString) l = num; else r = num;
  }
  int c = l.Compare(r);
  switch (op) {
    case BinOp::kEq: return Value(c == 0);
    case BinOp::kNe: return Value(c != 0);
    case BinOp::kLt: return Value(c < 0);
    case BinOp::kLe: return Value(c <= 0);
    case BinOp::kGt: return Value(c > 0);
    case BinOp::kGe: return Value(c >= 0);
    default: break;
  }
  return Status::Internal("unhandled comparison op");
}

/// Tri-state predicate operand: unset = NULL.
Result<std::optional<bool>> TriBool(const Value& v) {
  if (v.is_null()) return std::optional<bool>();
  bool b = false;
  RETURN_IF_ERROR(CoerceBool(v, &b));
  return std::optional<bool>(b);
}

/// Kleene AND/OR over tri-state operands (both already evaluated).
Value CombineLogic(BinOp op, std::optional<bool> l, std::optional<bool> r) {
  if (op == BinOp::kAnd) {
    if (l == false || r == false) return Value(false);
    if (!l.has_value() || !r.has_value()) return Value::Null();
    return Value(true);
  }
  if (l == true || r == true) return Value(true);
  if (!l.has_value() || !r.has_value()) return Value::Null();
  return Value(false);
}

}  // namespace

Result<Value> BinaryExpr::Eval(const Row& row) const {
  if (op_ == BinOp::kAnd || op_ == BinOp::kOr) {
    // Three-valued logic with short-circuit: FALSE absorbs AND, TRUE absorbs
    // OR (the right side is not evaluated, preserving error semantics); NULL
    // propagates otherwise.
    ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
    ASSIGN_OR_RETURN(std::optional<bool> l, TriBool(lv));
    if (op_ == BinOp::kAnd && l == false) return Value(false);
    if (op_ == BinOp::kOr && l == true) return Value(true);
    ASSIGN_OR_RETURN(Value rv, right_->Eval(row));
    ASSIGN_OR_RETURN(std::optional<bool> r, TriBool(rv));
    return CombineLogic(op_, l, r);
  }
  ASSIGN_OR_RETURN(Value l, left_->Eval(row));
  ASSIGN_OR_RETURN(Value r, right_->Eval(row));
  if (IsComparison(op_)) {
    return EvalComparison(op_, std::move(l), std::move(r));
  }
  return EvalArithmetic(op_, l, r);
}

Status BinaryExpr::EvalBatch(const Batch& batch,
                             const std::vector<uint32_t>& rids,
                             std::vector<Value>* out) const {
  if (op_ == BinOp::kAnd || op_ == BinOp::kOr) {
    // Vectorized short-circuit: evaluate the left side for every row, then
    // the right side only over the rows the left did not decide — the same
    // rows the row-at-a-time path would evaluate it on.
    std::vector<Value> lv;
    RETURN_IF_ERROR(left_->EvalBatch(batch, rids, &lv));
    out->assign(rids.size(), Value::Null());
    std::vector<uint32_t> pending_rids;
    std::vector<size_t> pending_pos;
    std::vector<std::optional<bool>> pending_l;
    for (size_t i = 0; i < rids.size(); ++i) {
      ASSIGN_OR_RETURN(std::optional<bool> l, TriBool(lv[i]));
      if (op_ == BinOp::kAnd && l == false) {
        (*out)[i] = Value(false);
      } else if (op_ == BinOp::kOr && l == true) {
        (*out)[i] = Value(true);
      } else {
        pending_rids.push_back(rids[i]);
        pending_pos.push_back(i);
        pending_l.push_back(l);
      }
    }
    if (!pending_rids.empty()) {
      std::vector<Value> rv;
      RETURN_IF_ERROR(right_->EvalBatch(batch, pending_rids, &rv));
      for (size_t j = 0; j < pending_rids.size(); ++j) {
        ASSIGN_OR_RETURN(std::optional<bool> r, TriBool(rv[j]));
        (*out)[pending_pos[j]] = CombineLogic(op_, pending_l[j], r);
      }
    }
    return Status::OK();
  }
  std::vector<Value> lv, rv;
  RETURN_IF_ERROR(left_->EvalBatch(batch, rids, &lv));
  RETURN_IF_ERROR(right_->EvalBatch(batch, rids, &rv));
  out->clear();
  out->reserve(rids.size());
  if (IsComparison(op_)) {
    for (size_t i = 0; i < rids.size(); ++i) {
      ASSIGN_OR_RETURN(Value v,
                       EvalComparison(op_, std::move(lv[i]), std::move(rv[i])));
      out->push_back(std::move(v));
    }
    return Status::OK();
  }
  for (size_t i = 0; i < rids.size(); ++i) {
    ASSIGN_OR_RETURN(Value v, EvalArithmetic(op_, lv[i], rv[i]));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinOpName(op_) + " " +
         right_->ToString() + ")";
}

Result<Value> NotExpr::Eval(const Row& row) const {
  // NOT NULL is NULL: collapsing NULL to false here would make
  // NOT (x LIKE p) true for NULL x.
  ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  if (v.is_null()) return Value::Null();
  bool b = false;
  RETURN_IF_ERROR(CoerceBool(v, &b));
  return Value(!b);
}

Status NotExpr::EvalBatch(const Batch& batch, const std::vector<uint32_t>& rids,
                          std::vector<Value>* out) const {
  std::vector<Value> vals;
  RETURN_IF_ERROR(child_->EvalBatch(batch, rids, &vals));
  out->clear();
  out->reserve(rids.size());
  for (const Value& v : vals) {
    if (v.is_null()) {
      out->push_back(Value::Null());
      continue;
    }
    bool b = false;
    RETURN_IF_ERROR(CoerceBool(v, &b));
    out->push_back(Value(!b));
  }
  return Status::OK();
}

Result<Value> IsNullExpr::Eval(const Row& row) const {
  ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  return Value(negated_ ? !v.is_null() : v.is_null());
}

Status IsNullExpr::EvalBatch(const Batch& batch,
                             const std::vector<uint32_t>& rids,
                             std::vector<Value>* out) const {
  std::vector<Value> vals;
  RETURN_IF_ERROR(child_->EvalBatch(batch, rids, &vals));
  out->clear();
  out->reserve(rids.size());
  for (const Value& v : vals) {
    out->push_back(Value(negated_ ? !v.is_null() : v.is_null()));
  }
  return Status::OK();
}

bool LikeExpr::Match(const std::string& text, const std::string& pattern) {
  // Iterative wildcard matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

/// Shared LIKE semantics: NULL input yields NULL (SQL), so NOT (x LIKE p)
/// is NULL — not true — for NULL x.
Result<Value> LikeOne(const Value& v, const std::string& pattern) {
  if (v.is_null()) return Value::Null();
  if (v.type() != DataType::kString) {
    return Status::TypeError("LIKE applied to " +
                             std::string(DataTypeName(v.type())));
  }
  return Value(LikeExpr::Match(v.AsString(), pattern));
}

}  // namespace

Result<Value> LikeExpr::Eval(const Row& row) const {
  ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  return LikeOne(v, pattern_);
}

Status LikeExpr::EvalBatch(const Batch& batch,
                           const std::vector<uint32_t>& rids,
                           std::vector<Value>* out) const {
  std::vector<Value> vals;
  RETURN_IF_ERROR(child_->EvalBatch(batch, rids, &vals));
  out->clear();
  out->reserve(rids.size());
  for (const Value& v : vals) {
    ASSIGN_OR_RETURN(Value m, LikeOne(v, pattern_));
    out->push_back(std::move(m));
  }
  return Status::OK();
}

std::string LikeExpr::ToString() const {
  return child_->ToString() + " LIKE " + SqlQuote(pattern_);
}

namespace {

/// Shared IN semantics: NULL input yields NULL; NULL list entries never
/// match (SQL equality), they don't make the result NULL — the planner only
/// builds literal lists, which are non-NULL in practice.
Value InListOne(const Value& v, const std::vector<Value>& values) {
  if (v.is_null()) return Value::Null();
  for (const Value& cand : values) {
    if (!cand.is_null() && v.Compare(cand) == 0) return Value(true);
  }
  return Value(false);
}

}  // namespace

Result<Value> InListExpr::Eval(const Row& row) const {
  ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  return InListOne(v, values_);
}

Status InListExpr::EvalBatch(const Batch& batch,
                             const std::vector<uint32_t>& rids,
                             std::vector<Value>* out) const {
  std::vector<Value> vals;
  RETURN_IF_ERROR(child_->EvalBatch(batch, rids, &vals));
  out->clear();
  out->reserve(rids.size());
  for (const Value& v : vals) out->push_back(InListOne(v, values_));
  return Status::OK();
}

std::string InListExpr::ToString() const {
  std::string out = child_->ToString() + " IN (";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].type() == DataType::kString ? SqlQuote(values_[i].AsString())
                                                  : values_[i].ToString();
  }
  return out + ")";
}

ExprPtr Col(std::string name) { return std::make_unique<ColumnExpr>(std::move(name)); }
ExprPtr Lit(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr Lit(int64_t v) { return std::make_unique<LiteralExpr>(Value(v)); }
ExprPtr Lit(const std::string& v) { return std::make_unique<LiteralExpr>(Value(v)); }
ExprPtr Bin(BinOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(op, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) { return Bin(BinOp::kEq, std::move(l), std::move(r)); }
ExprPtr And(ExprPtr l, ExprPtr r) {
  return Bin(BinOp::kAnd, std::move(l), std::move(r));
}

ExprPtr AndAll(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (auto& c : conjuncts) {
    out = out == nullptr ? std::move(c) : And(std::move(out), std::move(c));
  }
  return out;
}

void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == Expr::Kind::kBinary) {
    auto* bin = static_cast<BinaryExpr*>(expr.get());
    if (bin->op() == BinOp::kAnd) {
      SplitConjuncts(bin->TakeLeft(), out);
      SplitConjuncts(bin->TakeRight(), out);
      return;
    }
  }
  out->push_back(std::move(expr));
}

}  // namespace xmlrdb::rdb
