#include "rdb/schema.h"

#include "common/str_util.h"

namespace xmlrdb::rdb {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  std::optional<size_t> found = TryIndexOf(name);
  if (!found.has_value()) {
    return Status::NotFound("column '" + name + "' not in schema " + ToString());
  }
  return *found;
}

std::optional<size_t> Schema::TryIndexOf(const std::string& name) const {
  size_t dot = name.find('.');
  std::optional<size_t> found;
  if (dot != std::string::npos) {
    std::string qual = name.substr(0, dot);
    std::string col = name.substr(dot + 1);
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].qualifier == qual && columns_[i].name == col) return i;
    }
    return std::nullopt;
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) {
      if (found.has_value()) return std::nullopt;  // ambiguous
      found = i;
    }
  }
  return found;
}

Schema Schema::WithQualifier(const std::string& alias) const {
  Schema out = *this;
  for (auto& c : out.columns_) c.qualifier = alias;
  return out;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  Schema out = left;
  for (const auto& c : right.columns()) out.AddColumn(c);
  return out;
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        ToString());
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    const Column& c = columns_[i];
    if (v.is_null()) {
      if (!c.nullable) {
        return Status::ConstraintError("NULL in non-nullable column " + c.name);
      }
      continue;
    }
    if (v.type() == c.type) continue;
    if (c.type == DataType::kDouble && v.type() == DataType::kInt) continue;
    return Status::TypeError("column " + c.name + " expects " +
                             DataTypeName(c.type) + ", got " +
                             DataTypeName(v.type()));
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    parts.push_back(c.QualifiedName() + " " + DataTypeName(c.type));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace xmlrdb::rdb
