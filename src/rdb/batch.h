// Column-oriented row batches for the vectorized executor.
//
// A Batch holds ~DefaultBatchSize() rows decomposed into per-column
// std::vector<Value> arrays, plus an optional selection vector. Operators
// that filter rows (Filter, Limit, Distinct, residual join predicates) do
// not copy survivors out; they attach a selection vector of physical row
// indices and leave the columns untouched. Consumers iterate ActiveRids()
// — the selection when present, a cached identity vector otherwise — so a
// chain of filters costs one index-vector rewrite per batch instead of one
// Row copy per tuple.
//
// The executor mode and batch size are process-wide knobs: tests flip the
// mode to byte-compare the batch path against the row path, and the batch
// ablation benchmark sweeps the size (256/1024/4096).

#ifndef XMLRDB_RDB_BATCH_H_
#define XMLRDB_RDB_BATCH_H_

#include <cstdint>
#include <vector>

#include "rdb/value.h"

namespace xmlrdb::rdb {

class Batch {
 public:
  Batch() = default;

  /// Clears rows and selection and sets the column count. Column storage is
  /// kept allocated so a pulling operator can reuse one Batch per lifetime.
  void Reset(size_t num_columns);

  size_t num_columns() const { return cols_.size(); }
  /// Physical rows stored (ignores the selection vector).
  size_t num_rows() const { return num_rows_; }
  /// Rows visible through the selection vector (== num_rows() when none).
  size_t ActiveCount() const { return has_sel_ ? sel_.size() : num_rows_; }

  std::vector<Value>& column(size_t c) { return cols_[c]; }
  const std::vector<Value>& column(size_t c) const { return cols_[c]; }
  const Value& At(size_t c, size_t physical_rid) const {
    return cols_[c][physical_rid];
  }

  /// Appends one row across all columns (the row-compat shim and small
  /// operators use this; scans append column-wise directly).
  void AppendRow(const Row& row);
  void AppendRowMove(Row&& row);

  /// Declares the physical row count after direct column writes. Every
  /// column must hold exactly `n` values.
  void SetNumRows(size_t n) { num_rows_ = n; }

  bool has_selection() const { return has_sel_; }
  /// Replaces the selection vector; indices must be physical rids in
  /// ascending output order.
  void SetSelection(std::vector<uint32_t> sel);
  void ClearSelection();

  /// Physical rids of the active rows, in output order. Without a selection
  /// this is a lazily built (and cached) identity vector.
  const std::vector<uint32_t>& ActiveRids() const;

  /// Copies one physical row out, column by column.
  Row MaterializeRow(size_t physical_rid) const;

  /// Appends all active rows to `out` in output order.
  void AppendTo(std::vector<Row>* out) const;

 private:
  std::vector<std::vector<Value>> cols_;
  size_t num_rows_ = 0;
  bool has_sel_ = false;
  std::vector<uint32_t> sel_;
  mutable std::vector<uint32_t> identity_;  ///< cache backing ActiveRids()
};

/// Target rows per batch (default 1024; initial value overridable via the
/// XMLRDB_BATCH_SIZE environment variable). Clamped to [1, 65536].
int DefaultBatchSize();
void SetDefaultBatchSize(int n);

/// Which executor drains plans. kBatch is the default; the row path is kept
/// for differential testing (XMLRDB_EXEC_MODE=row selects it at startup).
enum class ExecMode { kRow, kBatch };

ExecMode DefaultExecMode();
void SetDefaultExecMode(ExecMode mode);

/// RAII mode switch for tests.
class ScopedExecMode {
 public:
  explicit ScopedExecMode(ExecMode mode) : prev_(DefaultExecMode()) {
    SetDefaultExecMode(mode);
  }
  ~ScopedExecMode() { SetDefaultExecMode(prev_); }
  ScopedExecMode(const ScopedExecMode&) = delete;
  ScopedExecMode& operator=(const ScopedExecMode&) = delete;

 private:
  ExecMode prev_;
};

}  // namespace xmlrdb::rdb

#endif  // XMLRDB_RDB_BATCH_H_
