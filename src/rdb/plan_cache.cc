#include "rdb/plan_cache.h"

#include "common/resource_tracker.h"

namespace xmlrdb::rdb {

namespace {

ResourceGauge& BytesGauge() {
  static ResourceGauge& g =
      ResourceTracker::Global().GetGauge("plancache.bytes");
  return g;
}

ResourceGauge& EntriesGauge() {
  static ResourceGauge& g =
      ResourceTracker::Global().GetGauge("plancache.entries");
  return g;
}

}  // namespace

PlanCache::~PlanCache() {
  std::lock_guard<std::mutex> lock(mu_);
  BytesGauge().Add(-tracked_bytes_);
  EntriesGauge().Add(-static_cast<int64_t>(lru_.size()));
  tracked_bytes_ = 0;
}

std::shared_ptr<PlanCacheEntry> PlanCache::Lookup(const std::string& sql) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(sql);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second);
  return *it->second;
}

std::shared_ptr<PlanCacheEntry> PlanCache::Insert(
    std::shared_ptr<PlanCacheEntry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return entry;
  auto it = index_.find(entry->sql);
  if (it != index_.end()) {
    // Lost a Prepare race: the first insert is canonical.
    lru_.splice(lru_.begin(), lru_, it->second);
    return *it->second;
  }
  tracked_bytes_ += EntryCostBytes(*entry);
  BytesGauge().Add(EntryCostBytes(*entry));
  EntriesGauge().Add(1);
  lru_.push_front(entry);
  index_[entry->sql] = lru_.begin();
  EvictToCapacityLocked();
  return entry;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  BytesGauge().Add(-tracked_bytes_);
  EntriesGauge().Add(-static_cast<int64_t>(lru_.size()));
  tracked_bytes_ = 0;
  lru_.clear();
  index_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void PlanCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  EvictToCapacityLocked();
}

void PlanCache::EvictToCapacityLocked() {
  while (lru_.size() > capacity_) {
    int64_t cost = EntryCostBytes(*lru_.back());
    tracked_bytes_ -= cost;
    BytesGauge().Add(-cost);
    EntriesGauge().Add(-1);
    evicted_bytes_.fetch_add(cost, std::memory_order_relaxed);
    index_.erase(lru_.back()->sql);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.evicted_bytes = evicted_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace xmlrdb::rdb
