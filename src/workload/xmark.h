// XMark-flavoured auction-site document generator.
//
// Substitution note (see DESIGN.md): the original XMark data generator and
// its 100 MB reference documents are replaced by this structurally faithful
// synthetic generator — same element vocabulary (site / regions / item /
// people / person / open_auction / ...), same reference structure
// (person ids, item refs), controllable scale. Queries Q1–Q12 in queries.h
// exercise the same access patterns as the published auction workloads.

#ifndef XMLRDB_WORKLOAD_XMARK_H_
#define XMLRDB_WORKLOAD_XMARK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "xml/node.h"

namespace xmlrdb::workload {

struct XMarkConfig {
  /// 1.0 produces roughly 200 items / 250 people / 220 auctions (~1 MB).
  double scale = 0.1;
  uint64_t seed = 7;
};

/// Generates the auction document.
std::unique_ptr<xml::Document> GenerateXMark(const XMarkConfig& config);

/// The DTD matching GenerateXMark's output (drives the inline mapping).
std::string XMarkDtd();

}  // namespace xmlrdb::workload

#endif  // XMLRDB_WORKLOAD_XMARK_H_
