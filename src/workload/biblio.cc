#include "workload/biblio.h"

#include "common/rng.h"

namespace xmlrdb::workload {

std::string BiblioDtd() {
  return R"(
<!ELEMENT bib (book*, article*)>
<!ELEMENT book (title, author, publisher?)>
<!ATTLIST book year CDATA #REQUIRED price CDATA #IMPLIED>
<!ELEMENT article (title, author*, journal)>
<!ATTLIST article year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (firstname, lastname)>
<!ATTLIST author age CDATA #IMPLIED>
<!ELEMENT firstname (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
)";
}

namespace {
void AddAuthor(xml::Node* parent, Rng* rng) {
  xml::Node* author = parent->AddElement("author");
  if (rng->Bernoulli(0.5)) {
    author->SetAttr("age", std::to_string(rng->Uniform(25, 80)));
  }
  author->AddElement("firstname")->AddText(rng->Word(3, 8));
  author->AddElement("lastname")->AddText(rng->Word(4, 10));
}
}  // namespace

std::unique_ptr<xml::Document> GenerateBiblio(const BiblioConfig& cfg) {
  Rng rng(cfg.seed);
  auto doc = std::make_unique<xml::Document>();
  doc->set_dtd_text(BiblioDtd());
  doc->set_doctype_name("bib");
  xml::Node* bib = doc->doc_node()->AddChild(
      std::make_unique<xml::Node>(xml::NodeKind::kElement, "bib"));
  for (int64_t i = 0; i < cfg.books; ++i) {
    xml::Node* book = bib->AddElement("book");
    book->SetAttr("year", std::to_string(rng.Uniform(1970, 2003)));
    if (rng.Bernoulli(0.7)) {
      book->SetAttr("price", std::to_string(rng.Uniform(10, 150)));
    }
    book->AddElement("title")->AddText(rng.Word(4, 10) + " " + rng.Word(4, 10));
    AddAuthor(book, &rng);
    if (rng.Bernoulli(0.8)) {
      book->AddElement("publisher")->AddText(rng.Word(5, 12) + " Press");
    }
  }
  for (int64_t i = 0; i < cfg.articles; ++i) {
    xml::Node* article = bib->AddElement("article");
    article->SetAttr("year", std::to_string(rng.Uniform(1990, 2003)));
    article->AddElement("title")->AddText(rng.Word(4, 10) + " " +
                                          rng.Word(4, 10));
    int64_t n_authors = rng.Uniform(1, 4);
    for (int64_t a = 0; a < n_authors; ++a) AddAuthor(article, &rng);
    article->AddElement("journal")->AddText("Journal of " + rng.Word(5, 10));
  }
  return doc;
}

}  // namespace xmlrdb::workload
