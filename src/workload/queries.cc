#include "workload/queries.h"

namespace xmlrdb::workload {

std::vector<BenchQuery> AuctionQueries() {
  return {
      {"Q1", "/site/people/person/name", "short fully-specified path"},
      {"Q2", "/site/people/person[@id = 'person0']/name",
       "attribute point selection"},
      {"Q3", "/site/regions/africa/item/name", "long fully-specified path"},
      {"Q4", "//item/name", "descendant axis at the path head"},
      {"Q5", "/site/regions//item/name", "descendant axis mid-path"},
      {"Q6", "/site/regions/*/item/location", "wildcard step"},
      {"Q7", "//item[quantity = 2]/name", "value predicate on child element"},
      {"Q8", "/site/regions/africa/item[3]/name", "positional predicate"},
      {"Q9", "//person[creditcard]/name", "existence predicate"},
      {"Q10", "//open_auction[initial > 200]/current",
       "numeric range predicate"},
      {"Q11", "//person/@id", "attribute harvest under descendant axis"},
      {"Q12", "/site/open_auctions/open_auction",
       "subtree selection (feeds reconstruction)"},
  };
}

std::vector<BenchQuery> BiblioQueries() {
  return {
      {"B1", "/bib/book/title", "inlined leaf access"},
      {"B2", "/bib/article/author/lastname", "set-valued child table join"},
      {"B3", "//author[firstname]/lastname", "existence predicate"},
      {"B4", "/bib/book[@year = '2000']/title", "attribute selection"},
      {"B5", "//title", "descendant name lookup"},
  };
}

}  // namespace xmlrdb::workload
