// Bibliography generator: the book/article corpus the DTD-inlining paper
// (Shanmugasundaram et al. 1999) uses as its running example.

#ifndef XMLRDB_WORKLOAD_BIBLIO_H_
#define XMLRDB_WORKLOAD_BIBLIO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "xml/node.h"

namespace xmlrdb::workload {

struct BiblioConfig {
  int64_t books = 100;
  int64_t articles = 150;
  uint64_t seed = 11;
};

std::unique_ptr<xml::Document> GenerateBiblio(const BiblioConfig& config);

/// DTD for the generated bibliography.
std::string BiblioDtd();

}  // namespace xmlrdb::workload

#endif  // XMLRDB_WORKLOAD_BIBLIO_H_
