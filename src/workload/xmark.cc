#include "workload/xmark.h"

#include <algorithm>

#include "common/rng.h"

namespace xmlrdb::workload {

namespace {

const char* kRegions[] = {"africa", "asia", "australia", "europe",
                          "namerica", "samerica"};

const char* kCountries[] = {"United States", "Germany", "Japan", "Kenya",
                            "Brazil", "Australia", "France", "India"};

const char* kCategories[] = {"antiques", "books", "computers", "coins",
                             "stamps", "art", "music", "garden"};

std::string Sentence(Rng* rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out += " ";
    out += rng->Word(3, 9);
  }
  return out;
}

}  // namespace

std::string XMarkDtd() {
  return R"(
<!ELEMENT site (regions, categories, people, open_auctions, closed_auctions)>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT item (location, quantity, name, description, incategory*)>
<!ATTLIST item id ID #REQUIRED featured CDATA #IMPLIED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category IDREF #REQUIRED>
<!ELEMENT categories (category*)>
<!ELEMENT category (name)>
<!ATTLIST category id ID #REQUIRED>
<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?, creditcard?, profile?)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT profile (interest*)>
<!ATTLIST profile income CDATA #IMPLIED>
<!ELEMENT interest EMPTY>
<!ATTLIST interest category IDREF #REQUIRED>
<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, bidder*, current, itemref, seller)>
<!ATTLIST open_auction id ID #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT bidder (date, personref, increase)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT personref EMPTY>
<!ATTLIST personref person IDREF #REQUIRED>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT itemref EMPTY>
<!ATTLIST itemref item IDREF #REQUIRED>
<!ELEMENT seller EMPTY>
<!ATTLIST seller person IDREF #REQUIRED>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (price, date, quantity, itemref, buyer)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer person IDREF #REQUIRED>
)";
}

std::unique_ptr<xml::Document> GenerateXMark(const XMarkConfig& cfg) {
  Rng rng(cfg.seed);
  auto count = [&](double base) {
    return std::max<int64_t>(1, static_cast<int64_t>(base * cfg.scale));
  };
  const int64_t n_items = count(200);
  const int64_t n_people = count(250);
  const int64_t n_open = count(120);
  const int64_t n_closed = count(100);
  const int64_t n_categories =
      std::min<int64_t>(8, std::max<int64_t>(2, count(8)));

  auto doc = std::make_unique<xml::Document>();
  doc->set_dtd_text(XMarkDtd());
  doc->set_doctype_name("site");
  xml::Node* site = doc->doc_node()->AddChild(
      std::make_unique<xml::Node>(xml::NodeKind::kElement, "site"));

  // regions / items
  xml::Node* regions = site->AddElement("regions");
  int64_t item_no = 0;
  for (const char* region : kRegions) {
    xml::Node* r = regions->AddElement(region);
    int64_t here = n_items / 6 + (item_no % 6 == 0 ? n_items % 6 : 0);
    for (int64_t i = 0; i < here; ++i) {
      xml::Node* item = r->AddElement("item");
      item->SetAttr("id", "item" + std::to_string(item_no++));
      if (rng.Bernoulli(0.1)) item->SetAttr("featured", "yes");
      item->AddElement("location")
          ->AddText(kCountries[rng.Uniform(0, 7)]);
      item->AddElement("quantity")
          ->AddText(std::to_string(rng.Uniform(1, 5)));
      item->AddElement("name")->AddText(Sentence(&rng, 2));
      item->AddElement("description")->AddText(Sentence(&rng, 12));
      int64_t cats = rng.Uniform(0, 2);
      for (int64_t c = 0; c < cats; ++c) {
        xml::Node* inc = item->AddElement("incategory");
        inc->SetAttr("category",
                     "category" + std::to_string(rng.Uniform(0, n_categories - 1)));
      }
    }
  }
  const int64_t total_items = item_no;

  // categories
  xml::Node* categories = site->AddElement("categories");
  for (int64_t c = 0; c < n_categories; ++c) {
    xml::Node* cat = categories->AddElement("category");
    cat->SetAttr("id", "category" + std::to_string(c));
    cat->AddElement("name")->AddText(kCategories[c % 8]);
  }

  // people
  xml::Node* people = site->AddElement("people");
  for (int64_t p = 0; p < n_people; ++p) {
    xml::Node* person = people->AddElement("person");
    person->SetAttr("id", "person" + std::to_string(p));
    person->AddElement("name")->AddText(Sentence(&rng, 2));
    person->AddElement("emailaddress")
        ->AddText(rng.Word(4, 8) + "@" + rng.Word(3, 6) + ".com");
    if (rng.Bernoulli(0.6)) {
      person->AddElement("phone")->AddText(
          "+" + std::to_string(rng.Uniform(1, 99)) + " " +
          std::to_string(rng.Uniform(1000000, 9999999)));
    }
    if (rng.Bernoulli(0.7)) {
      xml::Node* addr = person->AddElement("address");
      addr->AddElement("street")
          ->AddText(std::to_string(rng.Uniform(1, 99)) + " " + rng.Word(4, 9) +
                    " St");
      addr->AddElement("city")->AddText(rng.Word(4, 10));
      addr->AddElement("country")->AddText(kCountries[rng.Uniform(0, 7)]);
    }
    if (rng.Bernoulli(0.5)) {
      person->AddElement("creditcard")
          ->AddText(std::to_string(rng.Uniform(1000, 9999)) + " " +
                    std::to_string(rng.Uniform(1000, 9999)));
    }
    if (rng.Bernoulli(0.8)) {
      xml::Node* profile = person->AddElement("profile");
      profile->SetAttr("income",
                       std::to_string(rng.Uniform(10000, 200000)));
      int64_t interests = rng.Uniform(0, 3);
      for (int64_t i = 0; i < interests; ++i) {
        profile->AddElement("interest")->SetAttr(
            "category",
            "category" + std::to_string(rng.Uniform(0, n_categories - 1)));
      }
    }
  }

  // open auctions
  xml::Node* open = site->AddElement("open_auctions");
  for (int64_t a = 0; a < n_open; ++a) {
    xml::Node* auc = open->AddElement("open_auction");
    auc->SetAttr("id", "open_auction" + std::to_string(a));
    int64_t initial = rng.Uniform(5, 300);
    auc->AddElement("initial")->AddText(std::to_string(initial));
    int64_t bids = rng.Uniform(0, 5);
    int64_t current = initial;
    for (int64_t b = 0; b < bids; ++b) {
      xml::Node* bidder = auc->AddElement("bidder");
      bidder->AddElement("date")->AddText(
          std::to_string(rng.Uniform(1, 28)) + "/" +
          std::to_string(rng.Uniform(1, 12)) + "/2002");
      bidder->AddElement("personref")
          ->SetAttr("person", "person" + std::to_string(rng.Uniform(0, n_people - 1)));
      int64_t inc = rng.Uniform(1, 50);
      bidder->AddElement("increase")->AddText(std::to_string(inc));
      current += inc;
    }
    auc->AddElement("current")->AddText(std::to_string(current));
    auc->AddElement("itemref")->SetAttr(
        "item", "item" + std::to_string(rng.Uniform(0, total_items - 1)));
    auc->AddElement("seller")->SetAttr(
        "person", "person" + std::to_string(rng.Uniform(0, n_people - 1)));
  }

  // closed auctions
  xml::Node* closed = site->AddElement("closed_auctions");
  for (int64_t a = 0; a < n_closed; ++a) {
    xml::Node* auc = closed->AddElement("closed_auction");
    auc->AddElement("price")->AddText(std::to_string(rng.Uniform(10, 1000)));
    auc->AddElement("date")->AddText(std::to_string(rng.Uniform(1, 28)) + "/" +
                                     std::to_string(rng.Uniform(1, 12)) +
                                     "/2002");
    auc->AddElement("quantity")->AddText(std::to_string(rng.Uniform(1, 5)));
    auc->AddElement("itemref")->SetAttr(
        "item", "item" + std::to_string(rng.Uniform(0, total_items - 1)));
    auc->AddElement("buyer")->SetAttr(
        "person", "person" + std::to_string(rng.Uniform(0, n_people - 1)));
  }

  return doc;
}

}  // namespace xmlrdb::workload
