// Random XML tree generator for property-based testing.

#ifndef XMLRDB_WORKLOAD_RANDOM_TREE_H_
#define XMLRDB_WORKLOAD_RANDOM_TREE_H_

#include <cstdint>
#include <memory>

#include "xml/node.h"

namespace xmlrdb::workload {

struct RandomTreeConfig {
  uint64_t seed = 42;
  int max_depth = 5;
  int max_children = 5;       ///< element children per node
  int tag_alphabet = 6;       ///< distinct element names t0..t{n-1}
  int attr_alphabet = 4;      ///< distinct attribute names a0..a{n-1}
  double attr_prob = 0.4;     ///< probability of each attribute slot
  double text_prob = 0.5;     ///< probability a node gets a text child
  double mixed_prob = 0.1;    ///< probability of text interleaved with elements
  bool numeric_text = false;  ///< emit small integers instead of words
};

/// Generates a random document. Deterministic in the seed.
std::unique_ptr<xml::Document> GenerateRandomTree(const RandomTreeConfig& config);

}  // namespace xmlrdb::workload

#endif  // XMLRDB_WORKLOAD_RANDOM_TREE_H_
