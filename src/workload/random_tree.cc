#include "workload/random_tree.h"

#include "common/rng.h"

namespace xmlrdb::workload {

namespace {

void Grow(xml::Node* el, Rng* rng, const RandomTreeConfig& cfg, int depth) {
  for (int a = 0; a < cfg.attr_alphabet; ++a) {
    if (rng->Bernoulli(cfg.attr_prob)) {
      std::string value = cfg.numeric_text ? std::to_string(rng->Uniform(0, 99))
                                           : rng->Word(2, 8);
      el->SetAttr("a" + std::to_string(a), value);
    }
  }
  bool leafy = depth >= cfg.max_depth;
  int n_children = leafy ? 0 : static_cast<int>(rng->Uniform(0, cfg.max_children));
  bool has_text = rng->Bernoulli(cfg.text_prob);
  bool mixed = has_text && n_children > 0 && rng->Bernoulli(cfg.mixed_prob);

  auto add_text = [&]() {
    std::string text = cfg.numeric_text ? std::to_string(rng->Uniform(0, 999))
                                        : rng->Word(1, 12);
    el->AddText(text);
  };

  if (has_text && !mixed && n_children == 0) add_text();
  if (mixed) add_text();
  for (int i = 0; i < n_children; ++i) {
    xml::Node* child =
        el->AddElement("t" + std::to_string(rng->Uniform(0, cfg.tag_alphabet - 1)));
    Grow(child, rng, cfg, depth + 1);
    if (mixed && rng->Bernoulli(0.5)) add_text();
  }
}

}  // namespace

std::unique_ptr<xml::Document> GenerateRandomTree(const RandomTreeConfig& cfg) {
  Rng rng(cfg.seed);
  auto doc = std::make_unique<xml::Document>();
  xml::Node* root = doc->doc_node()->AddChild(
      std::make_unique<xml::Node>(xml::NodeKind::kElement, "root"));
  Grow(root, &rng, cfg, 1);
  // Guarantee a non-trivial tree: at least one child.
  if (root->children().empty()) {
    xml::Node* child = root->AddElement("t0");
    child->AddText("x");
  }
  return doc;
}

}  // namespace xmlrdb::workload
