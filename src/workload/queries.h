// The benchmark query workload Q1–Q12 over the auction documents, spanning
// the query classes the storage-scheme comparison literature reports on.

#ifndef XMLRDB_WORKLOAD_QUERIES_H_
#define XMLRDB_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

namespace xmlrdb::workload {

struct BenchQuery {
  std::string id;          ///< "Q1"...
  std::string xpath;
  std::string description; ///< the query class it represents
};

/// The full auction-workload query suite.
std::vector<BenchQuery> AuctionQueries();

/// A small suite over the bibliography documents (used by the inline
/// mapping benchmarks, whose DTD is the bibliography's).
std::vector<BenchQuery> BiblioQueries();

}  // namespace xmlrdb::workload

#endif  // XMLRDB_WORKLOAD_QUERIES_H_
