// Auction-site scenario: the XMark-flavoured workload stored under every
// mapping side by side; runs the Q1–Q12 suite against each and prints a
// result-count matrix plus per-mapping storage. The runnable miniature of
// the T1/T3 experiments.
//
//   $ ./build/examples/auction_site [scale]

#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "publish/publisher.h"
#include "shred/evaluator.h"
#include "shred/inline_mapping.h"
#include "shred/registry.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xml/dtd.h"
#include "xml/stats.h"
#include "xpath/xpath_ast.h"

int main(int argc, char** argv) {
  using namespace xmlrdb;

  double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  workload::XMarkConfig cfg;
  cfg.scale = scale;
  auto doc = workload::GenerateXMark(cfg);
  xml::DocStats stats = xml::ComputeStats(*doc->root());
  std::printf("auction document @ scale %.2f: %s\n\n", scale,
              stats.ToString().c_str());

  struct Store {
    std::string name;
    std::unique_ptr<shred::Mapping> mapping;
    std::unique_ptr<rdb::Database> db;
    shred::DocId id = 0;
  };
  std::vector<Store> stores;
  for (const std::string& name :
       {std::string("edge"), std::string("binary"), std::string("interval"),
        std::string("dewey"), std::string("inline"), std::string("blob")}) {
    Store s;
    s.name = name;
    if (name == "inline") {
      auto dtd = xml::ParseDtd(workload::XMarkDtd());
      auto m = shred::InlineMapping::Create(*dtd.value(), "site");
      if (!m.ok()) {
        std::printf("inline setup failed: %s\n", m.status().ToString().c_str());
        continue;
      }
      s.mapping = std::move(m).value();
    } else {
      s.mapping = std::move(shred::CreateMapping(name)).value();
    }
    s.db = std::make_unique<rdb::Database>();
    if (!s.mapping->Initialize(s.db.get()).ok()) continue;
    Stopwatch sw;
    auto id = s.mapping->Store(*doc, s.db.get());
    if (!id.ok()) {
      std::printf("%s store failed: %s\n", name.c_str(),
                  id.status().ToString().c_str());
      continue;
    }
    s.id = id.value();
    auto bytes = s.mapping->FootprintBytes(*s.db);
    std::printf("%-9s shredded in %6.1f ms -> %s across %zu tables\n",
                name.c_str(), sw.ElapsedMillis(),
                HumanBytes(bytes.value_or(0)).c_str(),
                s.db->TableNames().size());
    stores.push_back(std::move(s));
  }

  std::printf("\nquery matrix (result counts must agree; per-query time in "
              "ms):\n");
  std::printf("%-5s %-45s", "id", "xpath");
  for (const auto& s : stores) std::printf(" %14s", s.name.c_str());
  std::printf("\n");
  for (const auto& q : workload::AuctionQueries()) {
    auto path = xpath::ParseXPath(q.xpath);
    if (!path.ok()) continue;
    std::printf("%-5s %-45s", q.id.c_str(), q.xpath.c_str());
    for (auto& s : stores) {
      Stopwatch sw;
      auto nodes = shred::EvalPath(path.value(), s.mapping.get(), s.db.get(),
                                   s.id);
      if (!nodes.ok()) {
        std::printf(" %14s", "ERR");
        continue;
      }
      std::printf(" %5zu @%6.2fms", nodes.value().size(), sw.ElapsedMillis());
    }
    std::printf("\n");
  }

  // Publish one auction from the interval store.
  for (auto& s : stores) {
    if (s.name != "interval") continue;
    auto out = publish::PublishQueryResults(
        "/site/open_auctions/open_auction[1]", s.mapping.get(), s.db.get(),
        s.id);
    if (out.ok()) {
      std::printf("\nfirst open auction, published from the %s store:\n%s\n",
                  s.name.c_str(), out.value().c_str());
    }
  }
  return 0;
}
