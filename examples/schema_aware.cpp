// Schema-aware scenario: DTD-driven shredding (the Shanmugasundaram
// mapping). Shows DTD simplification, the generated relational schema, the
// join-free SQL that inlining buys, and a round trip.
//
//   $ ./build/examples/schema_aware

#include <cstdio>

#include "shred/evaluator.h"
#include "shred/inline_mapping.h"
#include "workload/biblio.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/dtd_simplify.h"
#include "xpath/xpath_ast.h"

int main() {
  using namespace xmlrdb;

  std::printf("bibliography DTD:\n%s\n", workload::BiblioDtd().c_str());
  auto dtd = xml::ParseDtd(workload::BiblioDtd());
  if (!dtd.ok()) return 1;

  // 1. Simplification: the flat multiplicity view of every element.
  auto simplified = xml::SimplifyDtd(*dtd.value());
  std::printf("simplified content models:\n");
  for (const auto& [name, se] : simplified.value().elements) {
    std::printf("  %-10s ->", name.c_str());
    for (const auto& c : se.children) {
      std::printf(" %s[%s]", c.name.c_str(), xml::MultiplicityName(c.mult));
    }
    if (se.has_text) std::printf(" #text");
    std::printf("\n");
  }

  // 2. The relational schema the inlining algorithm derives.
  auto mapping = shred::InlineMapping::Create(*dtd.value(), "bib");
  if (!mapping.ok()) return 1;
  rdb::Database db;
  if (!mapping.value()->Initialize(&db).ok()) return 1;
  std::printf("\ntables (element types that could not be inlined):\n");
  for (const auto& t : mapping.value()->TableElementNames()) {
    std::printf("  %s\n", t.c_str());
  }

  // 3. Store generated data and inspect a table directly.
  workload::BiblioConfig cfg;
  cfg.books = 8;
  cfg.articles = 6;
  auto doc = workload::GenerateBiblio(cfg);
  auto id = mapping.value()->Store(*doc, &db);
  if (!id.ok()) {
    std::printf("store: %s\n", id.status().ToString().c_str());
    return 1;
  }
  auto rows =
      db.Execute("SELECT id, at_year, at_price, c_publisher_tx FROM inl_book "
                 "ORDER BY seq LIMIT 5");
  std::printf("\ninl_book sample (year/price attributes and the inlined "
              "publisher are plain columns):\n%s\n",
              rows.value().ToString().c_str());

  // 4. The join elimination: a three-step path that needs no join at all
  //    beyond locating the rows.
  auto path = xpath::ParseXPath("/bib/book/publisher");
  auto sql = mapping.value()->TranslatePathToSql(id.value(), path.value());
  std::printf("\n/bib/book/publisher as SQL (publisher is inlined -> no "
              "extra join):\n  %s\n",
              sql.value().c_str());

  // 5. Queries still agree with the generic evaluator.
  auto titles = shred::EvalPathStrings(
      xpath::ParseXPath("/bib/book[@price > 100]/title").value(),
      mapping.value().get(), &db, id.value());
  std::printf("\nexpensive books:\n");
  for (const auto& t : titles.value()) std::printf("  - %s\n", t.c_str());

  // 6. Non-conforming data is rejected at store time.
  auto bad = xml::Parse("<bib><movie/></bib>");
  auto status = mapping.value()->Store(*bad.value(), &db);
  std::printf("\nstoring a non-conforming document: %s\n",
              status.status().ToString().c_str());
  return 0;
}
