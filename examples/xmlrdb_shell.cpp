// Interactive shell over the whole stack: load XML files (or generated
// workloads) under any mapping, run XPath and raw SQL, inspect plans and
// translated statements, publish results.
//
//   $ ./build/examples/xmlrdb_shell
//   xmlrdb> .help
//
// Commands:
//   .load <mapping> <file.xml>     shred a file (edge|binary|interval|dewey|blob;
//                                  inline additionally needs a DOCTYPE in the file)
//   .gen <mapping> <auction|biblio> [scale]   shred a generated workload
//   .xpath <path>                  evaluate against the last-loaded document
//   .sql <statement>               run SQL against the store
//   .explain <select>              show the plan for a SELECT
//   .translate <path>              show a path's single-statement SQL
//   .publish [path]                reconstruct the document (or matches)
//   .tables                        list tables and row counts
//   .quit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/str_util.h"
#include "publish/publisher.h"
#include "shred/evaluator.h"
#include "shred/inline_mapping.h"
#include "shred/registry.h"
#include "workload/biblio.h"
#include "workload/xmark.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xpath/xpath_ast.h"

namespace {

using namespace xmlrdb;

struct ShellState {
  std::unique_ptr<rdb::Database> db;
  std::unique_ptr<shred::Mapping> mapping;
  shred::DocId doc_id = 0;
  bool loaded = false;
};

Status LoadDocument(ShellState* state, const std::string& mapping_name,
                    const xml::Document& doc) {
  state->db = std::make_unique<rdb::Database>();
  if (mapping_name == "inline") {
    if (doc.dtd_text().empty()) {
      return Status::InvalidArgument(
          "inline mapping needs a DOCTYPE with an internal DTD subset");
    }
    ASSIGN_OR_RETURN(std::unique_ptr<xml::Dtd> dtd,
                     xml::ParseDtd(doc.dtd_text()));
    ASSIGN_OR_RETURN(state->mapping, shred::InlineMapping::Create(
                                         *dtd, doc.doctype_name().empty()
                                                   ? doc.root()->name()
                                                   : doc.doctype_name()));
  } else {
    ASSIGN_OR_RETURN(state->mapping, shred::CreateMapping(mapping_name));
  }
  RETURN_IF_ERROR(state->mapping->Initialize(state->db.get()));
  ASSIGN_OR_RETURN(state->doc_id, state->mapping->Store(doc, state->db.get()));
  state->loaded = true;
  return Status::OK();
}

void Help() {
  std::printf(
      "  .load <mapping> <file.xml>             shred a file\n"
      "  .gen <mapping> <auction|biblio> [s]    shred a generated workload\n"
      "  .xpath <path>                          evaluate XPath\n"
      "  .sql <statement>                       run SQL\n"
      "  .explain <select>                      show a SELECT's plan\n"
      "  .translate <path>                      path -> single SQL statement\n"
      "  .publish [path]                        reconstruct document/matches\n"
      "  .tables                                list tables\n"
      "  .quit\n"
      "mappings: edge binary interval dewey inline blob\n");
}

int RunShell(std::istream& in, bool interactive) {
  ShellState state;
  std::string line;
  if (interactive) std::printf("xmlrdb shell — .help for commands\n");
  while (true) {
    if (interactive) {
      std::printf("xmlrdb> ");
      std::fflush(stdout);
    }
    if (!std::getline(in, line)) break;
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty()) continue;
    std::istringstream ss{std::string(trimmed)};
    std::string cmd;
    ss >> cmd;
    std::string rest;
    std::getline(ss, rest);
    rest = std::string(StripWhitespace(rest));

    if (cmd == ".quit" || cmd == ".exit") break;
    if (cmd == ".help") {
      Help();
      continue;
    }
    if (cmd == ".load" || cmd == ".gen") {
      std::istringstream args(rest);
      std::string mapping_name, source;
      args >> mapping_name >> source;
      std::unique_ptr<xml::Document> doc;
      if (cmd == ".load") {
        std::ifstream f(source);
        if (!f) {
          std::printf("cannot open %s\n", source.c_str());
          continue;
        }
        std::stringstream buf;
        buf << f.rdbuf();
        auto parsed = xml::Parse(buf.str());
        if (!parsed.ok()) {
          std::printf("%s\n", parsed.status().ToString().c_str());
          continue;
        }
        doc = std::move(parsed).value();
      } else if (source == "auction") {
        workload::XMarkConfig cfg;
        double scale = 0.1;
        args >> scale;
        cfg.scale = scale;
        doc = workload::GenerateXMark(cfg);
      } else if (source == "biblio") {
        workload::BiblioConfig cfg;
        doc = workload::GenerateBiblio(cfg);
      } else {
        std::printf("unknown workload '%s'\n", source.c_str());
        continue;
      }
      Status st = LoadDocument(&state, mapping_name, *doc);
      if (!st.ok()) {
        std::printf("%s\n", st.ToString().c_str());
      } else {
        std::printf("loaded as doc %lld under the %s mapping\n",
                    static_cast<long long>(state.doc_id),
                    state.mapping->name().c_str());
      }
      continue;
    }
    if (!state.loaded && cmd != ".sql" && cmd != ".explain") {
      std::printf("load a document first (.load / .gen)\n");
      continue;
    }
    if (cmd == ".xpath") {
      auto path = xpath::ParseXPath(rest);
      if (!path.ok()) {
        std::printf("%s\n", path.status().ToString().c_str());
        continue;
      }
      auto values = shred::EvalPathStrings(path.value(), state.mapping.get(),
                                           state.db.get(), state.doc_id);
      if (!values.ok()) {
        std::printf("%s\n", values.status().ToString().c_str());
        continue;
      }
      for (const auto& v : values.value()) std::printf("  %s\n", v.c_str());
      std::printf("(%zu results)\n", values.value().size());
      continue;
    }
    if (cmd == ".sql" || cmd == ".explain") {
      if (state.db == nullptr) state.db = std::make_unique<rdb::Database>();
      std::string sql = cmd == ".explain" ? "EXPLAIN " + rest : rest;
      auto r = state.db->Execute(sql);
      std::printf("%s\n", r.ok() ? r.value().ToString().c_str()
                                 : r.status().ToString().c_str());
      continue;
    }
    if (cmd == ".translate") {
      auto path = xpath::ParseXPath(rest);
      if (!path.ok()) {
        std::printf("%s\n", path.status().ToString().c_str());
        continue;
      }
      auto sql = state.mapping->TranslatePathToSql(state.doc_id, path.value());
      std::printf("%s\n", sql.ok() ? sql.value().c_str()
                                   : sql.status().ToString().c_str());
      continue;
    }
    if (cmd == ".publish") {
      xml::SerializeOptions pretty;
      pretty.pretty = true;
      auto out = rest.empty()
                     ? publish::PublishDocument(state.mapping.get(),
                                                state.db.get(), state.doc_id,
                                                pretty)
                     : publish::PublishQueryResults(rest, state.mapping.get(),
                                                    state.db.get(),
                                                    state.doc_id, pretty);
      std::printf("%s\n", out.ok() ? out.value().c_str()
                                   : out.status().ToString().c_str());
      continue;
    }
    if (cmd == ".tables") {
      for (const std::string& t : state.db->TableNames()) {
        std::printf("  %-24s %8zu rows\n", t.c_str(),
                    state.db->FindTable(t)->num_rows());
      }
      continue;
    }
    std::printf("unknown command '%s' — .help\n", cmd.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--script") {
    // Non-interactive: read commands from stdin (used by the smoke test).
    return RunShell(std::cin, /*interactive=*/false);
  }
  return RunShell(std::cin, /*interactive=*/true);
}
