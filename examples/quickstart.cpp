// Quickstart: store an XML document in a relational database, query it with
// XPath, look at the SQL it becomes, and get the XML back.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "publish/publisher.h"
#include "shred/edge_mapping.h"
#include "shred/evaluator.h"
#include "xml/parser.h"
#include "xpath/xpath_ast.h"

int main() {
  using namespace xmlrdb;

  const char* kXml = R"(
<catalog>
  <cd genre="rock"><artist>Bob Dylan</artist><title>Empire Burlesque</title><price>10.90</price></cd>
  <cd genre="rock"><artist>Bonnie Tyler</artist><title>Hide your heart</title><price>9.90</price></cd>
  <cd genre="country"><artist>Dolly Parton</artist><title>Greatest Hits</title><price>9.90</price></cd>
</catalog>)";

  // 1. Parse.
  auto doc = xml::Parse(kXml);
  if (!doc.ok()) {
    std::printf("parse error: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  // 2. Shred into a relational database using the edge mapping.
  rdb::Database db;
  shred::EdgeMapping mapping;
  if (auto st = mapping.Initialize(&db); !st.ok()) {
    std::printf("init error: %s\n", st.ToString().c_str());
    return 1;
  }
  auto doc_id = mapping.Store(*doc.value(), &db);
  if (!doc_id.ok()) {
    std::printf("store error: %s\n", doc_id.status().ToString().c_str());
    return 1;
  }
  std::printf("stored document %lld; the edge table now holds:\n\n",
              static_cast<long long>(doc_id.value()));
  auto rows = db.Execute("SELECT source, ordinal, kind, name, target, value "
                         "FROM edge LIMIT 8");
  std::printf("%s\n\n", rows.value().ToString().c_str());

  // 3. Query with XPath.
  auto path = xpath::ParseXPath("/catalog/cd[@genre = 'rock']/title");
  auto titles =
      shred::EvalPathStrings(path.value(), &mapping, &db, doc_id.value());
  std::printf("rock titles:\n");
  for (const auto& t : titles.value()) std::printf("  - %s\n", t.c_str());

  // 4. See the SQL a (predicate-free) path becomes.
  auto plain = xpath::ParseXPath("/catalog/cd/title");
  auto sql = mapping.TranslatePathToSql(doc_id.value(), plain.value());
  std::printf("\n/catalog/cd/title as SQL:\n  %s\n", sql.value().c_str());
  auto plan = db.PlanSql(sql.value());
  std::printf("\nand its plan:\n%s", plan.value()->Explain().c_str());

  // 5. Publish the document back out of the tables.
  xml::SerializeOptions pretty;
  pretty.pretty = true;
  auto text = publish::PublishDocument(&mapping, &db, doc_id.value(), pretty);
  std::printf("\nreconstructed document:\n%s\n", text.value().c_str());
  return 0;
}
