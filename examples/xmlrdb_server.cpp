// xmlrdb_server — the standalone TCP server binary.
//
//   $ ./build/examples/xmlrdb_server [--port N] [--scale S] [--workers W]
//                                    [--shards N] [--admin-port N]
//                                    [--log-json]
//
// Stores XMark auction documents under every mapping, then serves the
// wire protocol (src/net/protocol.h): SQL over QUERY/PREPARE/EXEC_PREPARED,
// XPath over XPATH (docid > 0 routes to that document's shard; docid <= 0
// fans out over every stored document and merges in document order), plus
// the xmlrdb_sessions / xmlrdb_statements / xmlrdb_metrics / xmlrdb_shards
// virtual tables for live introspection. Runs until stdin closes or SIGINT.
//
// --shards N puts every mapping behind a shard::ShardRouter of N
// independent engine shards (consistent-hash placement; enough documents
// are stored that every shard owns at least one). The default of 1 keeps
// the classic single-engine layout — just expressed as a one-shard router.
//
// --admin-port starts the read-only HTTP observability plane
// (net/http_admin.h) on a second port: /metrics, /healthz, /readyz,
// /statements, /sessions, /resources, /tracez. It comes up *before* the
// stores are built so /readyz honestly answers 503 while the XMark load is
// still running. --log-json switches the lifecycle messages (startup,
// stores loaded, shutdown) to one-line JSON objects with microsecond
// timestamps, so smoke harnesses can parse the log instead of scraping
// free-form text.
//
//   $ ./build/examples/xmlrdb_server --smoke [--admin-port 0]
//
// Self-drive mode for CI: starts the server on an ephemeral port, runs an
// in-process client mix (SQL + prepared statements + Q1–Q12 on every
// mapping + pipelined burst + a protocol-violation connection), probes the
// admin endpoints when --admin-port is given, stops the server cleanly, and
// prints one JSON object with the serving stats. Exits nonzero if anything
// misbehaves — including a zero plan-cache hit count.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/json.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "net/client.h"
#include "net/http_admin.h"
#include "net/server.h"
#include "rdb/wal.h"
#include "shard/hash_ring.h"
#include "shard/shard_router.h"
#include "shred/evaluator.h"
#include "shred/inline_mapping.h"
#include "shred/registry.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xml/dtd.h"
#include "xpath/xpath_ast.h"

using namespace xmlrdb;

namespace {

bool g_log_json = false;

/// One structured lifecycle line when --log-json is set. Values must
/// already be rendered as JSON (use json::Quote for strings); keys are
/// emitted in call order after the timestamp and event name:
///   {"ts_us":171234,"event":"startup","port":8019,...}
void LogEvent(
    const char* event,
    std::initializer_list<std::pair<const char*, std::string>> fields) {
  if (!g_log_json) return;
  std::string line = "{\"ts_us\":" + std::to_string(trace::NowMicros()) +
                     ",\"event\":" + json::Quote(event);
  for (const auto& [key, value] : fields) {
    line += ',';
    line += json::Quote(key);
    line += ':';
    line += value;
  }
  line += "}\n";
  std::fputs(line.c_str(), stdout);
  std::fflush(stdout);
}

struct Store {
  std::unique_ptr<shard::ShardRouter> router;
  std::vector<shred::DocId> ids;
};

/// Smallest document count whose router-assigned docids (1..k) put at
/// least `min_per_shard` documents on every shard of an N-shard ring. The
/// smoke run wants two per shard: the second store re-prepares the same
/// INSERT, so every shard's plan cache records a hit even for the blob
/// mapping (which caches parsed DOMs and issues almost no query SQL).
int DocsForShardCoverage(int shards, int min_per_shard) {
  if (shards <= 1) return min_per_shard;
  shard::HashRing ring;
  for (int i = 0; i < shards; ++i) ring.AddShard(i);
  std::map<int, int> per_shard;
  int covered = 0;
  int k = 0;
  while (covered < shards && k < 64 * shards * min_per_shard) {
    ++k;
    if (++per_shard[ring.OwnerOf(k)] == min_per_shard) ++covered;
  }
  return k;
}

std::map<std::string, Store>* BuildStores(double scale, int shards,
                                          int min_docs_per_shard) {
  workload::XMarkConfig cfg;
  cfg.scale = scale;
  auto doc = workload::GenerateXMark(cfg);
  const int ndocs = DocsForShardCoverage(shards, min_docs_per_shard);
  auto* stores = new std::map<std::string, Store>();
  auto add = [&](const std::string& name,
                 shard::MappingFactory factory) -> bool {
    shard::ShardRouterOptions opts;
    opts.shards = shards;
    opts.start_version_gc = true;
    auto router = shard::ShardRouter::Create(std::move(factory), opts);
    if (!router.ok()) {
      std::fprintf(stderr, "router %s: %s\n", name.c_str(),
                   router.status().ToString().c_str());
      return false;
    }
    Store s;
    s.router = std::move(router).value();
    for (int i = 0; i < ndocs; ++i) {
      auto id = s.router->Store(*doc);
      if (!id.ok()) {
        std::fprintf(stderr, "store %s: %s\n", name.c_str(),
                     id.status().ToString().c_str());
        return false;
      }
      s.ids.push_back(id.value());
    }
    (*stores)[name] = std::move(s);
    return true;
  };
  for (const std::string& name : shred::GenericMappingNames()) {
    if (!add(name, [name] { return shred::CreateMapping(name); })) {
      return nullptr;
    }
  }
  auto dtd = xml::ParseDtd(workload::XMarkDtd());
  if (!dtd.ok()) return nullptr;
  std::shared_ptr<const xml::Dtd> shared_dtd = std::move(dtd).value();
  auto inline_factory =
      [shared_dtd]() -> Result<std::unique_ptr<shred::Mapping>> {
    ASSIGN_OR_RETURN(std::unique_ptr<shred::InlineMapping> m,
                     shred::InlineMapping::Create(*shared_dtd, "site"));
    return std::unique_ptr<shred::Mapping>(std::move(m));
  };
  if (!add("inline", inline_factory)) return nullptr;
  return stores;
}

net::XPathHandler MakeHandler(std::map<std::string, Store>* stores) {
  return [stores](int64_t doc, const std::string& mapping,
                  const std::string& xpath)
             -> Result<std::vector<std::string>> {
    auto it = stores->find(mapping);
    if (it == stores->end()) {
      return Status::InvalidArgument("unknown mapping '" + mapping + "'");
    }
    ASSIGN_OR_RETURN(xpath::PathExpr path, xpath::ParseXPath(xpath));
    shard::ShardRouter* router = it->second.router.get();
    if (doc <= 0) {
      // Fan-out: every stored document, merged in ascending-docid order.
      ASSIGN_OR_RETURN(std::vector<shard::DocStrings> per_doc,
                       router->EvalPathStringsAll(path));
      std::vector<std::string> flat;
      for (auto& d : per_doc) {
        for (auto& v : d.values) flat.push_back(std::move(v));
      }
      return flat;
    }
    return router->EvalPathStrings(path, doc);
  };
}

/// CI self-drive: exercise every request type against a live socket, then
/// verify the counters. With a live admin plane, also GETs the observability
/// endpoints and fails on any non-200 or an empty /metrics. Returns 0 on
/// success.
int RunSmoke(rdb::Database* db, net::Server* server,
             std::map<std::string, Store>* stores,
             net::HttpAdminServer* admin, int shards) {
  const uint16_t port = server->port();
  net::Client c;
  if (!c.Connect("127.0.0.1", port).ok()) {
    std::fprintf(stderr, "smoke: connect failed\n");
    return 1;
  }
  if (!c.Ping().ok()) {
    std::fprintf(stderr, "smoke: ping failed\n");
    return 1;
  }
  // SQL + prepared statements (twice, so the plan cache records hits).
  if (!c.Query("CREATE TABLE smoke (a INTEGER)").ok()) return 1;
  for (int round = 0; round < 2; ++round) {
    auto h = c.Prepare("SELECT COUNT(*) FROM smoke WHERE a >= ?");
    if (!h.ok()) return 1;
    auto r = c.ExecPrepared(h.value().stmt_id, {rdb::Value(int64_t{0})});
    if (!r.ok() || r.value().rows.size() != 1) return 1;
    if (!c.CloseStmt(h.value().stmt_id).ok()) return 1;
  }
  // Q1–Q12 on every mapping through the socket; results must agree with
  // the embedded router. Each query runs twice: once routed to document 1,
  // once fanned out over every document (docid 0) against the router's own
  // scatter-gather — so every shard serves real traffic.
  for (const auto& [name, s] : *stores) {
    for (const auto& q : workload::AuctionQueries()) {
      auto wire = c.XPath(s.ids.front(), name, q.xpath);
      if (!wire.ok()) {
        std::fprintf(stderr, "smoke: %s/%s: %s\n", name.c_str(),
                     q.id.c_str(), wire.status().ToString().c_str());
        return 1;
      }
      auto path = xpath::ParseXPath(q.xpath);
      auto local = s.router->EvalPathStrings(path.value(), s.ids.front());
      if (!local.ok() || local.value() != wire.value()) {
        std::fprintf(stderr, "smoke: %s/%s: wire/embedded mismatch\n",
                     name.c_str(), q.id.c_str());
        return 1;
      }
      auto wire_all = c.XPath(0, name, q.xpath);
      auto local_all = s.router->EvalPathStringsAll(path.value());
      if (!wire_all.ok() || !local_all.ok()) {
        std::fprintf(stderr, "smoke: %s/%s: fan-out failed\n", name.c_str(),
                     q.id.c_str());
        return 1;
      }
      std::vector<std::string> flat;
      for (auto& d : local_all.value()) {
        for (auto& v : d.values) flat.push_back(std::move(v));
      }
      if (flat != wire_all.value()) {
        std::fprintf(stderr, "smoke: %s/%s: fan-out wire mismatch\n",
                     name.c_str(), q.id.c_str());
        return 1;
      }
    }
  }
  // Pipelined burst.
  {
    net::Client p;
    if (!p.Connect("127.0.0.1", port).ok()) return 1;
    int sent = 0;
    for (int i = 0; i < 16; ++i) {
      if (p.SendXPath(1, "edge", "//item/name").ok()) ++sent;
    }
    for (int i = 0; i < sent; ++i) {
      auto f = p.ReadResponse();
      if (!f.ok()) return 1;
    }
  }
  // One deliberately hostile connection: oversized frame must be rejected
  // and the connection closed without hurting anyone else.
  {
    net::Client hostile;
    if (!hostile.Connect("127.0.0.1", port).ok()) return 1;
    std::string evil(net::kFrameHeaderBytes, '\0');
    evil[3] = '\x7F';  // ~2 GB claimed length
    evil[4] = static_cast<char>(net::MsgType::kQuery);
    if (!hostile.SendRaw(evil).ok()) return 1;
    auto f = hostile.ReadResponse();         // the error (or straight EOF)
    if (f.ok()) (void)hostile.ReadResponse();  // then EOF
  }
  if (!c.Ping().ok()) {
    std::fprintf(stderr, "smoke: server unhealthy after hostile client\n");
    return 1;
  }
  // Introspection through the protocol.
  auto sessions = c.Query("SELECT COUNT(*) FROM xmlrdb_sessions");
  if (!sessions.ok() || sessions.value().rows[0][0].AsInt() < 1) {
    std::fprintf(stderr, "smoke: xmlrdb_sessions empty\n");
    return 1;
  }
  // One xmlrdb_shards row per (mapping, shard).
  auto shard_rows = c.Query("SELECT COUNT(*) FROM xmlrdb_shards");
  const int64_t expected_shard_rows =
      static_cast<int64_t>(stores->size()) * shards;
  if (!shard_rows.ok() ||
      shard_rows.value().rows[0][0].AsInt() != expected_shard_rows) {
    std::fprintf(stderr, "smoke: xmlrdb_shards has %lld rows, want %lld\n",
                 shard_rows.ok()
                     ? static_cast<long long>(
                           shard_rows.value().rows[0][0].AsInt())
                     : -1LL,
                 static_cast<long long>(expected_shard_rows));
    return 1;
  }
  // Traced round trip: the server must echo our request id and its timing.
  if (!c.Hello().ok() || c.negotiated_version() < 2) {
    std::fprintf(stderr, "smoke: protocol v2 negotiation failed\n");
    return 1;
  }
  c.set_tracing(true);
  c.set_next_request_id(424242);
  auto traced = c.Query("SELECT COUNT(*) FROM xmlrdb_statements");
  if (!traced.ok() || !c.last_server_timing().valid ||
      c.last_server_timing().request_id != 424242) {
    std::fprintf(stderr, "smoke: traced request did not echo timing\n");
    return 1;
  }
  // Admin plane, while traffic counters are still warm.
  bool admin_ok = true;
  int64_t metrics_bytes = 0;
  if (admin != nullptr) {
    for (const char* target :
         {"/healthz", "/readyz", "/metrics", "/statements", "/sessions",
          "/resources"}) {
      auto r = net::HttpGet("127.0.0.1", admin->port(), target);
      if (!r.ok() || r.value().status != 200 || r.value().body.empty()) {
        std::fprintf(stderr, "smoke: admin GET %s failed\n", target);
        admin_ok = false;
        continue;
      }
      if (std::strcmp(target, "/metrics") == 0) {
        metrics_bytes = static_cast<int64_t>(r.value().body.size());
        if (r.value().body.find("xmlrdb_") == std::string::npos) {
          std::fprintf(stderr, "smoke: /metrics has no xmlrdb_ families\n");
          admin_ok = false;
        }
      }
    }
  }
  c.Close();

  // Every shard of every mapping must have owned documents and served the
  // Q1–Q12 traffic through its own plan cache — a shard with zero hits
  // means routing silently bypassed it.
  int64_t shard_hits_min = -1;
  int64_t shard_docs_min = -1;
  for (const auto& [name, s] : *stores) {
    for (const rdb::ShardInfo& info : s.router->SnapshotShards()) {
      if (shard_hits_min < 0 || info.plancache_hits < shard_hits_min) {
        shard_hits_min = info.plancache_hits;
      }
      if (shard_docs_min < 0 || info.docs < shard_docs_min) {
        shard_docs_min = info.docs;
      }
      if (info.plancache_hits <= 0 || info.docs <= 0) {
        std::fprintf(stderr,
                     "smoke: %s shard %lld idle (docs=%lld, "
                     "plancache_hits=%lld)\n",
                     name.c_str(), static_cast<long long>(info.shard),
                     static_cast<long long>(info.docs),
                     static_cast<long long>(info.plancache_hits));
      }
    }
  }

  auto pc = db->plan_cache().stats();
  server->Stop();
  // Stop() tears down every remaining connection, so a clean shutdown means
  // the open/close counters balance in the snapshot below.
  auto stats = server->stats();
  const bool ok = stats.requests > 0 && stats.protocol_errors > 0 &&
                  pc.hits > 0 && admin_ok && shard_hits_min > 0 &&
                  shard_docs_min > 0;
  std::printf(
      "{\"smoke\": %s, \"sessions_opened\": %lld, \"sessions_closed\": %lld, "
      "\"requests\": %lld, \"busy_rejected\": %lld, \"protocol_errors\": "
      "%lld, \"plancache_hits\": %lld, \"plancache_misses\": %lld, "
      "\"admin_probed\": %s, \"admin_ok\": %s, \"metrics_bytes\": %lld, "
      "\"shards\": %d, \"per_shard_docs_min\": %lld, "
      "\"per_shard_plancache_hits_min\": %lld}\n",
      ok ? "true" : "false", static_cast<long long>(stats.sessions_opened),
      static_cast<long long>(stats.sessions_closed),
      static_cast<long long>(stats.requests),
      static_cast<long long>(stats.busy_rejected),
      static_cast<long long>(stats.protocol_errors),
      static_cast<long long>(pc.hits), static_cast<long long>(pc.misses),
      admin != nullptr ? "true" : "false", admin_ok ? "true" : "false",
      static_cast<long long>(metrics_bytes), shards,
      static_cast<long long>(shard_docs_min),
      static_cast<long long>(shard_hits_min));
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 8019;
  double scale = 0.1;
  size_t workers = 4;
  int shards = 1;
  bool smoke = false;
  int admin_port = -1;  // -1 = admin plane disabled
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      port = 0;  // ephemeral
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
      if (shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--admin-port") == 0 && i + 1 < argc) {
      admin_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--log-json") == 0) {
      g_log_json = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--scale S] [--workers W] "
                   "[--shards N] [--admin-port N] [--log-json] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  rdb::Database db;
  net::ServerConfig cfg;
  cfg.port = port;
  cfg.workers = workers;
  net::Server server(&db, cfg);

  // The admin plane comes up before the stores are built: /healthz answers
  // immediately, /readyz stays 503 until the load finishes (and thereafter
  // reflects the WAL's sticky health if one is ever attached).
  std::atomic<bool> ready{false};
  net::HttpAdminServer admin;
  if (admin_port >= 0) {
    MetricsRegistry::Global().set_enabled(true);
    net::RegisterAdminEndpoints(
        &admin, &db, [&server] { return server.SnapshotSessions(); },
        [&ready, &db]() -> Status {
          if (!ready.load(std::memory_order_acquire)) {
            return Status::IoError("startup: stores still loading");
          }
          if (db.wal() != nullptr) return db.wal()->health();
          return Status::OK();
        });
    net::HttpAdminConfig admin_cfg;
    admin_cfg.port = static_cast<uint16_t>(admin_port);
    Status admin_st = admin.Start(admin_cfg);
    if (!admin_st.ok()) {
      std::fprintf(stderr, "admin start: %s\n", admin_st.ToString().c_str());
      return 1;
    }
    LogEvent("admin_listening",
             {{"port", std::to_string(admin.port())}});
  }

  const int64_t load_start_us = trace::NowMicros();
  std::map<std::string, Store>* stores =
      BuildStores(scale, shards, /*min_docs_per_shard=*/smoke ? 2 : 1);
  if (stores == nullptr) {
    LogEvent("startup_failed",
             {{"error", json::Quote("failed to build the stored mappings")}});
    std::fprintf(stderr, "failed to build the stored mappings\n");
    return 1;
  }
  LogEvent("stores_loaded",
           {{"duration_us",
             std::to_string(trace::NowMicros() - load_start_us)},
            {"mappings", std::to_string(stores->size())},
            {"shards", std::to_string(shards)},
            {"scale", std::to_string(scale)}});

  // Background MVCC version GC on the wire-facing database (the one that
  // takes DML): reclaims row versions the oldest live snapshot can no
  // longer see. Stopped by the Database destructor on shutdown. (Each
  // shard's database runs its own GC, started by the router.)
  db.StartVersionGc(/*interval_ms=*/1000);

  // SELECT * FROM xmlrdb_shards surfaces every mapping's router, one row
  // per (mapping, shard).
  db.set_shard_snapshot_provider([stores] {
    std::vector<rdb::ShardInfo> all;
    for (const auto& [name, s] : *stores) {
      for (rdb::ShardInfo& info : s.router->SnapshotShards()) {
        all.push_back(std::move(info));
      }
    }
    return all;
  });

  server.set_xpath_handler(MakeHandler(stores));
  Status st = server.Start();
  if (!st.ok()) {
    LogEvent("startup_failed", {{"error", json::Quote(st.ToString())}});
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  ready.store(true, std::memory_order_release);
  LogEvent("startup",
           {{"port", std::to_string(server.port())},
            {"admin_port",
             admin.running() ? std::to_string(admin.port()) : "null"},
            {"workers", std::to_string(workers)},
            {"pid", std::to_string(static_cast<long>(getpid()))}});

  if (smoke) {
    return RunSmoke(&db, &server, stores,
                    admin.running() ? &admin : nullptr, shards);
  }

  if (!g_log_json) {
    std::printf("xmlrdb_server listening on %s:%u (%zu workers, %d shard%s "
                "per mapping)\n",
                cfg.bind_address.c_str(), server.port(), cfg.workers, shards,
                shards == 1 ? "" : "s");
    if (admin.running()) {
      std::printf("admin endpoints on http://127.0.0.1:%u "
                  "(/metrics /healthz /readyz /statements /sessions "
                  "/resources /tracez)\n",
                  admin.port());
    }
    std::printf("mappings served over XPATH: ");
    for (const auto& [name, s] : *stores) std::printf("%s ", name.c_str());
    std::printf("\npress Ctrl-D to stop\n");
  }
  // Serve until stdin closes (Ctrl-D, or the harness killing the pipe).
  signal(SIGPIPE, SIG_IGN);
  char buf[256];
  while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
  }
  server.Stop();
  admin.Stop();
  auto stats = server.stats();
  LogEvent("shutdown",
           {{"requests", std::to_string(stats.requests)},
            {"sessions_opened", std::to_string(stats.sessions_opened)},
            {"sessions_closed", std::to_string(stats.sessions_closed)},
            {"busy_rejected", std::to_string(stats.busy_rejected)},
            {"protocol_errors", std::to_string(stats.protocol_errors)}});
  if (!g_log_json) {
    std::printf("served %lld requests over %lld sessions (%lld busy, %lld "
                "protocol errors)\n",
                static_cast<long long>(stats.requests),
                static_cast<long long>(stats.sessions_opened),
                static_cast<long long>(stats.busy_rejected),
                static_cast<long long>(stats.protocol_errors));
  }
  return 0;
}
