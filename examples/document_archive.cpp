// Document-archive scenario: many documents live in ONE relational store;
// documents are appended, queried individually, updated in place, and
// retired — the "XML database" use case (store + archive), on the Dewey
// mapping whose cheap appends suit an ingest-heavy archive.
//
//   $ ./build/examples/document_archive

#include <cstdio>

#include "common/str_util.h"
#include "publish/publisher.h"
#include "shred/dewey_mapping.h"
#include "shred/evaluator.h"
#include "workload/random_tree.h"
#include "xml/parser.h"
#include "xpath/xpath_ast.h"

int main() {
  using namespace xmlrdb;

  rdb::Database db;
  shred::DeweyMapping archive;
  if (!archive.Initialize(&db).ok()) return 1;

  // Ingest a batch of "message" documents.
  std::vector<shred::DocId> ids;
  for (int day = 1; day <= 5; ++day) {
    for (int n = 0; n < 4; ++n) {
      std::string xml =
          "<message day=\"" + std::to_string(day) + "\"><from>sensor" +
          std::to_string(n) + "</from><reading unit=\"C\">" +
          std::to_string(15 + day + n) + "</reading><status>" +
          (n % 2 == 0 ? "ok" : "degraded") + "</status></message>";
      auto doc = xml::Parse(xml);
      auto id = archive.Store(*doc.value(), &db);
      if (!id.ok()) {
        std::printf("store failed: %s\n", id.status().ToString().c_str());
        return 1;
      }
      ids.push_back(id.value());
    }
  }
  std::printf("archived %zu documents into one dw_nodes table (%zu rows)\n\n",
              ids.size(), db.FindTable("dw_nodes")->num_rows());

  // Cross-archive scan: which messages report degraded status with a high
  // reading? Evaluated per document — the archive keeps documents isolated
  // by docid.
  auto path = xpath::ParseXPath("/message[status = 'degraded'][reading > 20]");
  std::printf("degraded messages with reading > 20:\n");
  for (shred::DocId id : ids) {
    auto nodes = shred::EvalPath(path.value(), &archive, &db, id);
    if (!nodes.ok() || nodes.value().empty()) continue;
    auto text = publish::PublishDocument(&archive, &db, id);
    std::printf("  doc %lld: %s\n", static_cast<long long>(id),
                text.value().c_str());
  }

  // In-place update: annotate one message.
  auto frag = xml::ParseFragment("<note>inspected by operator</note>");
  auto root = archive.RootElement(&db, ids[0]);
  if (archive.InsertSubtree(&db, ids[0], root.value(), *frag.value()).ok()) {
    auto text = publish::PublishDocument(&archive, &db, ids[0]);
    std::printf("\nannotated doc %lld:\n  %s\n",
                static_cast<long long>(ids[0]), text.value().c_str());
  }

  // Retention: drop the oldest day's documents.
  size_t before = db.FindTable("dw_nodes")->num_rows();
  int removed = 0;
  for (size_t i = 0; i < 4; ++i) {
    if (archive.Remove(ids[i], &db).ok()) ++removed;
  }
  std::printf("\nretention pass removed %d documents (%zu -> %zu rows)\n",
              removed, before, db.FindTable("dw_nodes")->num_rows());

  // The store stays directly queryable as SQL, too.
  auto r = db.Execute(
      "SELECT docid, COUNT(*) AS nodes FROM dw_nodes GROUP BY docid "
      "ORDER BY docid LIMIT 5");
  std::printf("\nper-document node counts via plain SQL:\n%s\n",
              r.value().ToString().c_str());
  return 0;
}
